#include "sqldb/database.h"

#include <cerrno>
#include <chrono>
#include <sstream>
#include <thread>

#include "sqldb/parser.h"
#include "sqldb/statement_context.h"
#include "sqldb/system_tables.h"
#include "sqldb/wal.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/file.h"
#include "util/log.h"
#include "util/strings.h"
#include "util/timer.h"

namespace perfdmf::sqldb {

namespace {
constexpr const char* kSnapshotFile = "snapshot.pdb";
constexpr const char* kSnapshotPrev = "snapshot.pdb.prev";
constexpr const char* kSnapshotTmp = "snapshot.pdb.new";
constexpr const char* kWalFile = "wal.log";

ResultSetData count_result(std::size_t n) {
  ResultSetData out;
  out.column_names = {"rows_affected"};
  out.rows.push_back({Value(static_cast<std::int64_t>(n))});
  return out;
}

/// System tables are served from the telemetry registry; no statement may
/// write, shadow, or drop them.
void reject_system_table(const std::string& name, const char* action) {
  if (is_system_table_name(name)) {
    throw DbError(std::string(action) + " not allowed on read-only system table " +
                  name);
  }
}

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ENOSPC retry policy for WAL appends and checkpoint steps: a handful
/// of short, exponentially spaced retries rides out transient fsync
/// failures; persistent failure degrades the database instead.
constexpr int kEnospcRetries = 3;
constexpr int kEnospcBackoffBaseMs = 1;
/// Minimum spacing between automatic space-recovery probes.
constexpr std::int64_t kProbeIntervalMs = 200;

/// The view pinned by each in-flight statement on this thread, newest
/// last. A stack (not a single slot) because one thread can interleave
/// statements over several databases (view expansion runs nested
/// executes; tests hold two stores open at once).
struct ViewFrame {
  const Database* db;
  ReadView view;
};
thread_local std::vector<ViewFrame> t_view_stack;

/// Pins `view` as the thread's statement snapshot for `db` until end of
/// scope. Nested execution finds it via Database::read_view().
class ScopedReadView {
 public:
  ScopedReadView(const Database* db, ReadView view) {
    t_view_stack.push_back({db, view});
  }
  ~ScopedReadView() { t_view_stack.pop_back(); }
  ScopedReadView(const ScopedReadView&) = delete;
  ScopedReadView& operator=(const ScopedReadView&) = delete;
};
}  // namespace

// ------------------------------------------------------------ MVCC core

ReadView Database::read_view() const {
  for (auto it = t_view_stack.rbegin(); it != t_view_stack.rend(); ++it) {
    if (it->db == this) return it->view;
  }
  return ReadView{commit_ts_.load(std::memory_order_acquire), self_token()};
}

std::uint64_t Database::self_token() const {
  return writer_thread_.load(std::memory_order_acquire) ==
                 std::this_thread::get_id()
             ? writer_token_
             : 0;
}

void Database::publish_txn_stamps() {
  if (txn_stamps_.empty()) return;
  const std::uint64_t ts = commit_ts_.load(std::memory_order_relaxed) + 1;
  // Stamps first, counter last: a reader that snapshots the new counter
  // value is guaranteed to resolve every stamp as committed-at-ts.
  for (CommitStamp* stamp : txn_stamps_) {
    stamp->ts.store(ts, std::memory_order_release);
  }
  commit_ts_.store(ts, std::memory_order_release);
  txn_stamps_.clear();
}

void Database::abort_stamp(CommitStamp* stamp) {
  stamp->ts.store(kTsAborted, std::memory_order_release);
  if (stamp->table != nullptr && stamp->live_delta != 0) {
    stamp->table->adjust_live(-stamp->live_delta);
  }
}

void Database::abort_txn_stamps() {
  for (CommitStamp* stamp : txn_stamps_) abort_stamp(stamp);
  txn_stamps_.clear();
}

void Database::clear_writer() {
  writer_thread_.store(std::thread::id{}, std::memory_order_release);
  writer_token_ = 0;
}

class Database::WriteUnit {
 public:
  explicit WriteUnit(Database& db) : db_(db) {
    // Autocommit statements form their own one-statement write unit; a
    // statement inside a transaction joins the transaction's unit (same
    // token, so it sees the txn's earlier pending versions) but still
    // gets its own stamp — a failed statement aborts alone, the way the
    // old per-statement undo log rolled back exactly one statement.
    if (!db.in_txn_) {
      db.writer_token_ = db.next_token_.fetch_add(1, std::memory_order_relaxed);
      db.writer_thread_.store(std::this_thread::get_id(),
                              std::memory_order_release);
    }
    auto stamp = std::make_unique<CommitStamp>();
    stamp->token = db.writer_token_;
    stamp_ = stamp.get();
    db.stamp_graveyard_.push_back(std::move(stamp));
    view_ = ReadView{db.commit_ts_.load(std::memory_order_acquire),
                     db.writer_token_};
  }

  ~WriteUnit() {
    if (done_) return;
    db_.abort_stamp(stamp_);
    if (!db_.in_txn_) db_.clear_writer();
  }

  void succeed() {
    done_ = true;
    if (db_.in_txn_) {
      db_.txn_stamps_.push_back(stamp_);
      db_.txn_intro_.statements.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::uint64_t ts = db_.commit_ts_.load(std::memory_order_relaxed) + 1;
    stamp_->ts.store(ts, std::memory_order_release);
    db_.commit_ts_.store(ts, std::memory_order_release);
    db_.clear_writer();
  }

  CommitStamp* stamp() { return stamp_; }
  const ReadView& view() const { return view_; }

  WriteUnit(const WriteUnit&) = delete;
  WriteUnit& operator=(const WriteUnit&) = delete;

 private:
  Database& db_;
  CommitStamp* stamp_ = nullptr;
  ReadView view_;
  bool done_ = false;
};

template <typename Fn>
void Database::governed_durable_write(Fn&& fn, const char* what) {
  for (int attempt = 0;; ++attempt) {
    try {
      fn();
      return;
    } catch (const IoError& e) {
      // Only a full disk is treated as transient-then-degrading; every
      // other IO failure keeps its PR 2 semantics (statement/txn rolls
      // back, the error propagates untouched).
      if (e.sys_errno() != ENOSPC) throw;
      if (attempt < kEnospcRetries) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            kEnospcBackoffBaseMs << attempt));
        continue;
      }
      enter_read_only(std::string(what) + " failed with ENOSPC: " + e.what());
      throw DbError(std::string(what) +
                        " failed: disk full; database is now read-only",
                    DbError::Kind::kReadOnly);
    }
  }
}

void Database::enter_read_only(const std::string& reason) {
  bool expected = false;
  if (!read_only_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    return;  // already degraded
  }
  {
    std::lock_guard<std::mutex> lock(read_only_mutex_);
    read_only_reason_ = reason;
  }
  detail::gov_readonly_entered().add();
  util::log_error() << "entering degraded read-only mode: " << reason;
}

std::string Database::read_only_reason() const {
  std::lock_guard<std::mutex> lock(read_only_mutex_);
  return read_only_reason_;
}

bool Database::try_exit_read_only() {
  if (!read_only_.load(std::memory_order_acquire)) return true;
  try {
    util::failpoint::evaluate("wal.probe");
    if (wal_) {
      // Durably write-and-remove a small block next to the WAL: if this
      // round-trips, the device has space for appends again.
      const std::filesystem::path probe = directory_ / "space.probe";
      util::write_file_durable(probe, std::string(4096, 'p'));
      std::error_code ec;
      std::filesystem::remove(probe, ec);
    }
  } catch (const std::exception&) {
    return false;  // still degraded
  }
  {
    std::lock_guard<std::mutex> lock(read_only_mutex_);
    read_only_reason_.clear();
  }
  read_only_.store(false, std::memory_order_release);
  detail::gov_readonly_exited().add();
  util::log_info() << "leaving degraded read-only mode: space probe succeeded";
  return true;
}

void Database::ensure_writable() {
  if (!read_only_.load(std::memory_order_acquire) || replaying_) return;
  // Give recovery a chance without hammering the disk: at most one
  // probe per kProbeIntervalMs across all rejected writes.
  const std::int64_t now = steady_now_ms();
  std::int64_t last = last_probe_ms_.load(std::memory_order_relaxed);
  if (now - last >= kProbeIntervalMs &&
      last_probe_ms_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    if (try_exit_read_only()) return;
  }
  throw DbError("database is in degraded read-only mode (" +
                    read_only_reason() + ")",
                DbError::Kind::kReadOnly);
}

Database::Database() = default;

Database::Database(const std::filesystem::path& directory)
    : Database(directory, DurabilityOptions::from_env()) {}

Database::Database(const std::filesystem::path& directory,
                   const DurabilityOptions& options)
    : directory_(directory) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  // A leftover temp snapshot means a crash mid-checkpoint before the
  // rename; it was never installed, so it is dead weight.
  {
    std::error_code ec;
    fs::remove(directory / kSnapshotTmp, ec);
  }

  // Load the newest snapshot; fall back to the previous one when the
  // newest is corrupt or missing-with-prev-present (crash between the
  // two checkpoint renames).
  std::uint64_t watermark = 0;
  const fs::path snapshot = directory / kSnapshotFile;
  const fs::path previous = directory / kSnapshotPrev;
  if (fs::exists(snapshot)) {
    try {
      watermark = load_snapshot(snapshot);
    } catch (const ParseError& e) {
      report_.snapshot_error = e.what();
      clear_catalog();  // a partial load must not leak into the fallback
      if (!fs::exists(previous)) throw;
      watermark = load_snapshot(previous);
      report_.used_previous_snapshot = true;
      util::log_warn() << "snapshot " << snapshot.string()
                       << " is corrupt (" << report_.snapshot_error
                       << "); recovered from " << previous.string();
    }
  } else if (fs::exists(previous)) {
    watermark = load_snapshot(previous);
    report_.used_previous_snapshot = true;
    report_.snapshot_error = "newest snapshot missing (crash mid-checkpoint)";
    util::log_warn() << "snapshot " << snapshot.string()
                     << " missing; recovered from " << previous.string();
  }

  wal_ = std::make_unique<Wal>(directory / kWalFile, options.sync);
  replaying_ = true;
  const Wal::ReplayInfo info = wal_->replay(
      [this](const std::string& sql, const Params& params) {
        try {
          execute(sql, params);
        } catch (const Error& e) {
          // A statement that was durable but no longer executes (schema
          // drift, a bug): count it and keep going so the archive stays
          // usable — the caller sees it in the recovery report.
          ++report_.failed_statements;
          report_.warnings.push_back(std::string("WAL replay: ") + e.what());
          util::log_warn() << "WAL replay: " << e.what();
        }
      },
      watermark);
  replaying_ = false;
  report_.replayed_records = info.applied;
  if (info.corrupt) {
    report_.wal_corrupt = true;
    report_.wal_corruption_offset = info.corruption_offset;
    report_.discarded_records = info.discarded;
    report_.wal_error = info.error;
    util::log_error() << "WAL " << wal_->path().string()
                      << " corrupt at offset " << info.corruption_offset << " ("
                      << info.error << "); " << info.discarded
                      << " later record(s) discarded";
  }
  wal_->set_next_seq(std::max(watermark, info.last_seq) + 1);
}

Database::~Database() {
  if (wal_ && !replaying_) {
    try {
      checkpoint();
    } catch (const std::exception& e) {
      util::log_error() << "checkpoint on close failed: " << e.what();
    }
  }
}

ResultSetData Database::execute(std::string_view sql, const Params& params) {
  Statement stmt = parse_statement(sql);
  return execute_parsed(stmt, params, sql);
}

ResultSetData Database::execute(Statement& stmt, const Params& params,
                                std::string_view original_sql) {
  return execute_parsed(stmt, params, original_sql);
}

ResultSetData Database::execute_parsed(Statement& stmt, const Params& params,
                                       std::string_view sql) {
  if (stmt.placeholder_count > params.size()) {
    throw DbError("statement needs " + std::to_string(stmt.placeholder_count) +
                  " parameters, got " + std::to_string(params.size()));
  }
  // DML runs as a write unit: every version it installs carries the
  // unit's stamp, still pending. If the statement fails part-way (FK
  // violation on the third row of a multi-row INSERT, WAL append
  // failure, a deadline or cancel landing inside the row loop) the
  // stamp is aborted and every version becomes invisible garbage — the
  // statement rolls back whole, with no undo log, inside or outside a
  // transaction.
  switch (stmt.kind) {
    case StatementKind::kInsert:
    case StatementKind::kUpdate:
    case StatementKind::kDelete: {
      ensure_writable();
      WriteUnit unit(*this);
      ScopedReadView scope(this, unit.view());
      std::size_t n = 0;
      if (stmt.kind == StatementKind::kInsert) {
        n = run_insert(stmt.insert, params, unit.stamp(), unit.view());
      } else if (stmt.kind == StatementKind::kUpdate) {
        n = run_update(stmt.update, params, unit.stamp(), unit.view());
      } else {
        n = run_delete(stmt.del, params, unit.stamp(), unit.view());
      }
      log_statement(sql, params);  // throw here aborts the unit's stamp
      unit.succeed();
      return count_result(n);
    }
    default:
      break;
  }
  // Reads and DDL pin the committed snapshot (plus this thread's own
  // pending versions when it owns the open transaction); nested
  // execution inherits the outer statement's view via read_view().
  ScopedReadView scope(this, read_view());
  return dispatch_statement(stmt, params, sql);
}

ResultSetData Database::dispatch_statement(Statement& stmt, const Params& params,
                                           std::string_view sql) {
  // Degraded read-only mode: reads always pass; COMMIT/ROLLBACK must
  // pass so an in-flight transaction can end (its WAL append decides
  // its fate); everything that mutates fails fast.
  if (stmt.kind != StatementKind::kSelect &&
      stmt.kind != StatementKind::kExplain &&
      stmt.kind != StatementKind::kCommit &&
      stmt.kind != StatementKind::kRollback) {
    ensure_writable();
  }
  switch (stmt.kind) {
    case StatementKind::kSelect: {
      // When the slow-query log is armed, collect the plan so a slow
      // statement's trace carries its access path.
      telemetry::Span* span = telemetry::Span::current();
      if (span != nullptr && span->wants_plan()) {
        ExplainInfo explain;
        ResultSetData out = execute_select(*this, stmt.select, params, &explain);
        std::string plan;
        for (const auto& line : explain.lines) {
          if (!plan.empty()) plan += '\n';
          plan += line;
        }
        span->set_plan(std::move(plan));
        return out;
      }
      return execute_select(*this, stmt.select, params);
    }
    case StatementKind::kExplain:
      return execute_explain(*this, stmt.select, params, stmt.analyze);
    case StatementKind::kInsert:
    case StatementKind::kUpdate:
    case StatementKind::kDelete:
      throw DbError("DML dispatched outside a write unit");  // unreachable
    case StatementKind::kCreateTable:
      run_create_table(stmt.create_table);
      note_schema_change();
      log_statement(sql, params);
      return count_result(0);
    case StatementKind::kDropTable:
      run_drop_table(stmt.drop_table);
      note_schema_change();
      log_statement(sql, params);
      return count_result(0);
    case StatementKind::kAlterAddColumn: {
      Table& t = table(stmt.alter.table);
      t.add_column(stmt.alter.column);
      note_schema_change();
      log_ddl(sql, params);
      return count_result(0);
    }
    case StatementKind::kAlterDropColumn: {
      Table& t = table(stmt.alter.table);
      t.drop_column(stmt.alter.column_name);
      note_schema_change();
      log_ddl(sql, params);
      return count_result(0);
    }
    case StatementKind::kCreateIndex:
      run_create_index(stmt.create_index);
      note_schema_change();
      log_statement(sql, params);
      return count_result(0);
    case StatementKind::kCreateView:
      run_create_view(stmt.create_view);
      note_schema_change();
      log_statement(sql, params);
      return count_result(0);
    case StatementKind::kDropView:
      run_drop_view(stmt.drop_view);
      note_schema_change();
      log_statement(sql, params);
      return count_result(0);
    case StatementKind::kBegin:
      begin();
      return count_result(0);
    case StatementKind::kCommit:
      commit();
      return count_result(0);
    case StatementKind::kRollback:
      rollback();
      return count_result(0);
  }
  throw DbError("unreachable statement kind");
}

// --------------------------------------------------------------- catalog

bool Database::has_table(std::string_view name) const {
  return tables_.count(util::to_lower(name)) > 0;
}

Table& Database::table(std::string_view name) {
  auto it = tables_.find(util::to_lower(name));
  if (it == tables_.end()) {
    throw DbError("no such table: " + std::string(name));
  }
  return *it->second;
}

const Table& Database::table(std::string_view name) const {
  auto it = tables_.find(util::to_lower(name));
  if (it == tables_.end()) {
    throw DbError("no such table: " + std::string(name));
  }
  return *it->second;
}

std::vector<std::string> Database::table_names() const { return table_order_; }

bool Database::has_view(std::string_view name) const {
  return views_.count(util::to_lower(name)) > 0;
}

const std::string& Database::view_sql(std::string_view name) const {
  auto it = views_.find(util::to_lower(name));
  if (it == views_.end()) throw DbError("no such view: " + std::string(name));
  return it->second;
}

std::vector<std::string> Database::view_names() const { return view_order_; }

// ------------------------------------------------------------------- DML

std::size_t Database::run_insert(InsertStatement& stmt, const Params& params,
                                 CommitStamp* stamp, const ReadView& view) {
  reject_system_table(stmt.table, "INSERT");
  Table& t = table(stmt.table);
  const auto& columns = t.schema().columns();

  // Map the statement's column list to schema positions.
  std::vector<std::size_t> positions;
  if (stmt.columns.empty()) {
    for (std::size_t i = 0; i < columns.size(); ++i) positions.push_back(i);
  } else {
    for (const auto& name : stmt.columns) {
      positions.push_back(t.schema().column_index_or_throw(name));
    }
  }

  std::size_t inserted = 0;
  StatementContext* ctx = StatementContext::current();
  auto insert_values = [&](const Row& values) {
    if (ctx != nullptr) ctx->poll();
    if (values.size() != positions.size()) {
      throw DbError("INSERT value count mismatch for table " + stmt.table);
    }
    Row row(columns.size());
    // Unspecified columns receive their DEFAULT (NULL when none declared).
    for (std::size_t i = 0; i < columns.size(); ++i) {
      row[i] = columns[i].default_value;
    }
    for (std::size_t i = 0; i < positions.size(); ++i) {
      row[positions[i]] = values[i];
    }
    check_foreign_keys_insert(t, row, view);
    t.insert(std::move(row), stamp, view);
    ++inserted;
  };

  if (stmt.select) {
    // INSERT INTO ... SELECT: materialize the query, then feed each row.
    // (Materializing first also makes self-referential inserts — reading
    // from the target table — well defined.)
    ResultSetData result = execute_select(*this, *stmt.select, params);
    for (auto& row : result.rows) insert_values(row);
    return inserted;
  }

  static const Row kNoRow;
  for (auto& tuple : stmt.rows) {
    Row values;
    values.reserve(tuple.size());
    for (auto& expr : tuple) values.push_back(eval_expr(*expr, kNoRow, params));
    insert_values(values);
  }
  return inserted;
}

std::size_t Database::run_update(UpdateStatement& stmt, const Params& params,
                                 CommitStamp* stamp, const ReadView& view) {
  reject_system_table(stmt.table, "UPDATE");
  Table& t = table(stmt.table);
  std::vector<BoundColumn> layout;
  const std::string alias = util::to_lower(stmt.table);
  for (const auto& column : t.schema().columns()) {
    layout.push_back({alias, column.name});
  }
  if (stmt.where) bind_expr(*stmt.where, layout);
  for (auto& [column, expr] : stmt.assignments) bind_expr(*expr, layout);

  std::vector<RowId> candidates = collect_candidates(
      t, stmt.where ? stmt.where.get() : nullptr, params, view);
  std::size_t updated = 0;
  StatementContext* ctx = StatementContext::current();
  for (RowId id : candidates) {
    if (ctx != nullptr) ctx->poll();
    const Row* old_row = t.fetch(id, view);
    if (old_row == nullptr) continue;
    if (stmt.where && !is_truthy(eval_expr(*stmt.where, *old_row, params))) continue;
    Row new_row = *old_row;
    for (auto& [column, expr] : stmt.assignments) {
      new_row[t.schema().column_index_or_throw(column)] =
          eval_expr(*expr, *old_row, params);
    }
    check_foreign_keys_insert(t, new_row, view);  // FK columns may have changed
    t.update(id, std::move(new_row), stamp, view);
    ++updated;
  }
  return updated;
}

std::size_t Database::run_delete(DeleteStatement& stmt, const Params& params,
                                 CommitStamp* stamp, const ReadView& view) {
  reject_system_table(stmt.table, "DELETE");
  Table& t = table(stmt.table);
  std::vector<BoundColumn> layout;
  const std::string alias = util::to_lower(stmt.table);
  for (const auto& column : t.schema().columns()) {
    layout.push_back({alias, column.name});
  }
  if (stmt.where) bind_expr(*stmt.where, layout);

  std::vector<RowId> candidates = collect_candidates(
      t, stmt.where ? stmt.where.get() : nullptr, params, view);
  std::size_t deleted = 0;
  StatementContext* ctx = StatementContext::current();
  for (RowId id : candidates) {
    if (ctx != nullptr) ctx->poll();
    const Row* row = t.fetch(id, view);
    if (row == nullptr) continue;
    if (stmt.where && !is_truthy(eval_expr(*stmt.where, *row, params))) continue;
    check_foreign_keys_delete(t, *row, view);
    t.erase(id, stamp, view);
    ++deleted;
  }
  return deleted;
}

// ------------------------------------------------------------------- DDL

void Database::run_create_table(const CreateTableStatement& stmt) {
  reject_system_table(stmt.schema.name(), "CREATE TABLE");
  const std::string key = util::to_lower(stmt.schema.name());
  if (tables_.count(key)) {
    if (stmt.if_not_exists) return;
    throw DbError("table already exists: " + stmt.schema.name());
  }
  if (views_.count(key)) {
    throw DbError("a view named " + stmt.schema.name() + " already exists");
  }
  if (in_txn_) throw DbError("DDL inside a transaction is not supported");
  // Validate foreign keys up front so a broken schema never enters the
  // catalog (self-references are allowed).
  for (const auto& fk : stmt.schema.foreign_keys()) {
    stmt.schema.column_index_or_throw(fk.column);
    if (!util::iequals(fk.parent_table, stmt.schema.name()) &&
        !has_table(fk.parent_table)) {
      throw DbError("foreign key references unknown table " + fk.parent_table);
    }
  }
  auto t = std::make_unique<Table>(stmt.schema);
  // Index FK columns: parent lookups and restrict-on-delete checks must
  // not scan (this matches the DDL PerfDMF ships for its supported DBMSs).
  for (const auto& fk : stmt.schema.foreign_keys()) {
    t->create_index(stmt.schema.column_index_or_throw(fk.column), /*unique=*/false);
  }
  tables_.emplace(key, std::move(t));
  table_order_.push_back(stmt.schema.name());
}

void Database::run_drop_table(const DropTableStatement& stmt) {
  const std::string key = util::to_lower(stmt.table);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (stmt.if_exists) return;
    throw DbError("no such table: " + stmt.table);
  }
  if (in_txn_) throw DbError("DDL inside a transaction is not supported");
  // Refuse when another table still references this one.
  for (const auto& [other_key, other] : tables_) {
    if (other_key == key) continue;
    for (const auto& fk : other->schema().foreign_keys()) {
      if (util::iequals(fk.parent_table, stmt.table) && other->live_row_count() > 0) {
        throw DbError("cannot drop " + stmt.table + ": referenced by " +
                      other->schema().name());
      }
    }
  }
  tables_.erase(it);
  for (auto name_it = table_order_.begin(); name_it != table_order_.end(); ++name_it) {
    if (util::iequals(*name_it, stmt.table)) {
      table_order_.erase(name_it);
      break;
    }
  }
}

void Database::run_create_index(const CreateIndexStatement& stmt) {
  Table& t = table(stmt.table);
  t.create_index(t.schema().column_index_or_throw(stmt.column), stmt.unique);
}

void Database::run_create_view(const CreateViewStatement& stmt) {
  reject_system_table(stmt.name, "CREATE VIEW");
  const std::string key = util::to_lower(stmt.name);
  if (tables_.count(key)) {
    throw DbError("a table named " + stmt.name + " already exists");
  }
  if (views_.count(key)) {
    throw DbError("view already exists: " + stmt.name);
  }
  if (in_txn_) throw DbError("DDL inside a transaction is not supported");
  views_.emplace(key, stmt.select_sql);
  view_order_.push_back(stmt.name);
}

void Database::run_drop_view(const DropViewStatement& stmt) {
  const std::string key = util::to_lower(stmt.name);
  auto it = views_.find(key);
  if (it == views_.end()) {
    if (stmt.if_exists) return;
    throw DbError("no such view: " + stmt.name);
  }
  if (in_txn_) throw DbError("DDL inside a transaction is not supported");
  views_.erase(it);
  for (auto name_it = view_order_.begin(); name_it != view_order_.end();
       ++name_it) {
    if (util::iequals(*name_it, stmt.name)) {
      view_order_.erase(name_it);
      break;
    }
  }
}

// ---------------------------------------------------------- foreign keys

void Database::check_foreign_keys_insert(const Table& t, const Row& row,
                                         const ReadView& view) {
  for (const auto& fk : t.schema().foreign_keys()) {
    const Value& value = row[t.schema().column_index_or_throw(fk.column)];
    if (value.is_null()) continue;
    const Table& parent = table(fk.parent_table);
    const std::size_t parent_column =
        parent.schema().column_index_or_throw(fk.parent_column);
    bool found = false;
    if (auto hits = parent.index_equal(parent_column, value)) {
      // Index entries are append-only and can outlive the versions that
      // introduced them: resolve each hit against the writer's view and
      // re-check the key before trusting it.
      for (RowId id : *hits) {
        const Row* parent_row = parent.fetch(id, view);
        if (parent_row != nullptr && (*parent_row)[parent_column] == value) {
          found = true;
          break;
        }
      }
    } else {
      parent.scan(view, [&](RowId, const Row& parent_row) {
        if (parent_row[parent_column] == value) found = true;
      });
    }
    if (!found) {
      throw DbError("foreign key violation: " + t.schema().name() + "." +
                    fk.column + " = " + value.to_string() + " has no parent in " +
                    fk.parent_table + "." + fk.parent_column);
    }
  }
}

void Database::check_foreign_keys_delete(const Table& t, const Row& row,
                                         const ReadView& view) {
  // Restrict semantics: refuse to delete a row other tables still reference.
  for (const auto& [key, child] : tables_) {
    for (const auto& fk : child->schema().foreign_keys()) {
      if (!util::iequals(fk.parent_table, t.schema().name())) continue;
      const std::size_t parent_column =
          t.schema().column_index_or_throw(fk.parent_column);
      const Value& value = row[parent_column];
      if (value.is_null()) continue;
      const std::size_t child_column =
          child->schema().column_index_or_throw(fk.column);
      bool referenced = false;
      if (auto hits = child->index_equal(child_column, value)) {
        // When the child is the same table as the parent, the row being
        // deleted may reference itself; that is fine. Stale index hits
        // are filtered by resolving against the writer's view.
        for (RowId id : *hits) {
          const Row* child_row = child->fetch(id, view);
          if (child_row == nullptr || (*child_row)[child_column] != value) {
            continue;
          }
          if (child.get() == &t && *child_row == row) continue;
          referenced = true;
          break;
        }
      } else {
        child->scan(view, [&](RowId, const Row& child_row) {
          if (child_row[child_column] == value) referenced = true;
        });
      }
      if (referenced) {
        throw DbError("cannot delete from " + t.schema().name() + ": row " +
                      fk.parent_column + " = " + value.to_string() +
                      " is referenced by " + child->schema().name() + "." +
                      fk.column);
      }
    }
  }
}

// ----------------------------------------------------------- transactions

void Database::begin() {
  if (in_txn_) throw DbError("nested transactions are not supported");
  in_txn_ = true;
  txn_wal_buffer_.clear();
  txn_stamps_.clear();
  // The transaction is one write unit: all of its statements share one
  // token (so each sees the previous ones' pending versions), and its
  // thread holds the writer mutex until COMMIT/ROLLBACK.
  writer_token_ = next_token_.fetch_add(1, std::memory_order_relaxed);
  writer_thread_.store(std::this_thread::get_id(), std::memory_order_release);

  txn_intro_.token.store(writer_token_, std::memory_order_relaxed);
  txn_intro_.read_ts.store(commit_ts_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  txn_intro_.statements.store(0, std::memory_order_relaxed);
  static auto& versions_installed =
      telemetry::MetricsRegistry::instance().counter("mvcc.versions_installed");
  txn_intro_.versions_base.store(versions_installed.value(),
                                 std::memory_order_relaxed);
  txn_intro_.started_unix_ms.store(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  txn_intro_.open.store(true, std::memory_order_release);
}

void Database::commit() {
  if (!in_txn_) throw DbError("COMMIT without BEGIN");
  if (wal_ && !replaying_ && !txn_wal_buffer_.empty()) {
    StatementContext* ctx = StatementContext::current();
    const bool defer = ctx != nullptr;
    try {
      std::uint64_t seq = 0;
      governed_durable_write(
          [&] { seq = wal_->append_batch(txn_wal_buffer_, defer); },
          "commit (WAL batch append)");
      // Group commit: the fsync is deferred until the Connection calls
      // await_durability() after releasing the writer mutex, so many
      // committing threads share one leader fsync.
      if (defer && wal_->sync_mode() != SyncMode::kNone) {
        ctx->set_pending_durable(seq);
      }
    } catch (...) {
      // The batch never reached the log: abort every stamp so the
      // in-memory state matches what recovery would reconstruct, then
      // surface the IO failure. The transaction is over either way.
      in_txn_ = false;
      txn_intro_.open.store(false, std::memory_order_release);
      txn_wal_buffer_.clear();
      abort_txn_stamps();
      clear_writer();
      throw;
    }
  }
  in_txn_ = false;
  txn_intro_.open.store(false, std::memory_order_release);
  txn_wal_buffer_.clear();
  publish_txn_stamps();
  clear_writer();
  static auto& commits =
      telemetry::MetricsRegistry::instance().counter("sqldb.txn.commits");
  commits.add();
}

void Database::rollback() {
  if (!in_txn_) throw DbError("ROLLBACK without BEGIN");
  in_txn_ = false;
  txn_intro_.open.store(false, std::memory_order_release);
  abort_txn_stamps();
  txn_wal_buffer_.clear();
  clear_writer();
  static auto& rollbacks =
      telemetry::MetricsRegistry::instance().counter("sqldb.txn.rollbacks");
  rollbacks.add();
}

void Database::await_durability(StatementContext& ctx) {
  const std::uint64_t seq = ctx.take_pending_durable();
  if (seq == 0 || !wal_) return;
  governed_durable_write([&] { wal_->wait_durable(seq); }, "WAL fsync");
}

void Database::log_statement(std::string_view sql, const Params& params) {
  if (!wal_ || replaying_) return;
  if (in_txn_) {
    txn_wal_buffer_.emplace_back(std::string(sql), params);
    return;
  }
  // A failed append propagates to the WriteUnit, which aborts the
  // statement's stamp — the in-memory effects vanish with it.
  StatementContext* ctx = StatementContext::current();
  const bool defer = ctx != nullptr;
  std::uint64_t seq = 0;
  governed_durable_write([&] { seq = wal_->append(sql, params, defer); },
                         "WAL append");
  if (defer && wal_->sync_mode() == SyncMode::kAlways) {
    ctx->set_pending_durable(seq);
  }
}

void Database::log_ddl(std::string_view sql, const Params& params) {
  // Schema changes are not transactional (rollback does not undo them),
  // so their WAL records bypass the transaction buffer: an ALTER inside a
  // transaction that later rolls back must still be durable, or the
  // recovered schema would diverge from the live one.
  if (!wal_ || replaying_) return;
  governed_durable_write([&] { wal_->append(sql, params); }, "WAL append (DDL)");
}

// ------------------------------------------------------------ persistence

void Database::checkpoint() {
  if (in_txn_) throw DbError("cannot checkpoint inside a transaction");
  // MVCC garbage collection rides the checkpoint: the caller holds full
  // exclusion (writer mutex + drain lock), so no reader holds a snapshot
  // and no stamp is pending. Every chain collapses to its newest
  // committed version, dead slots are freed, and — with every stamp
  // pointer folded into the version caches by vacuum() — the retired
  // stamps themselves can be released.
  const auto checkpoint_start = std::chrono::steady_clock::now();
  {
    const auto vacuum_start = checkpoint_start;
    for (auto& [name, t] : tables_) t->vacuum();
    stamp_graveyard_.clear();
    telemetry::trace_emit("mvcc.vacuum", "checkpoint", vacuum_start,
                          std::chrono::steady_clock::now());
  }
  if (!wal_) {
    telemetry::trace_emit("checkpoint", "checkpoint", checkpoint_start,
                          std::chrono::steady_clock::now());
    return;
  }
  util::WallTimer timer;
  namespace fs = std::filesystem;
  const fs::path snapshot = directory_ / kSnapshotFile;
  const fs::path previous = directory_ / kSnapshotPrev;
  const fs::path tmp = directory_ / kSnapshotTmp;

  // The whole sequence is governed: a transient ENOSPC retries (each
  // step is safe to re-run — the temp write starts over, the renames
  // are idempotent), a persistent one degrades the database to
  // read-only instead of failing every future checkpoint attempt.
  governed_durable_write(
      [&] {
        // 1. Write the complete new snapshot beside the live one and
        //    fsync it: a crash from here on can at worst leave a dead
        //    temp file.
        util::failpoint::evaluate("snapshot.write");
        util::write_file_durable(tmp, render_snapshot(wal_->last_seq()));

        // 2. Rotate the live snapshot to .prev (recovery's fallback),
        //    then install the new one. Both renames are atomic; the
        //    directory fsync makes them durable. A crash between the
        //    renames leaves no snapshot.pdb but a .prev plus the full
        //    WAL — fully recoverable.
        std::error_code ec;
        util::failpoint::evaluate("snapshot.rotate");
        if (fs::exists(snapshot)) {
          fs::rename(snapshot, previous, ec);
          if (ec) {
            throw IoError("cannot rotate snapshot to " + previous.string() +
                              ": " + ec.message(),
                          ec.value());
          }
        }
        util::failpoint::evaluate("snapshot.install");
        fs::rename(tmp, snapshot, ec);
        if (ec) {
          throw IoError("cannot install snapshot " + snapshot.string() + ": " +
                            ec.message(),
                        ec.value());
        }
        util::fsync_dir(directory_);

        // 3. Truncate the WAL (durably — see Wal::reset). A crash
        //    before this is covered by the snapshot's watermark: replay
        //    skips records the snapshot already contains.
        wal_->reset();
      },
      "checkpoint");

  static auto& checkpoints =
      telemetry::MetricsRegistry::instance().counter("sqldb.checkpoints");
  static auto& checkpoint_micros =
      telemetry::MetricsRegistry::instance().histogram(
          "sqldb.checkpoint.micros");
  checkpoints.add();
  checkpoint_micros.record(static_cast<std::uint64_t>(timer.seconds() * 1e6));
  telemetry::trace_emit("checkpoint", "checkpoint", checkpoint_start,
                        std::chrono::steady_clock::now());
}

std::string Database::render_snapshot(std::uint64_t watermark) const {
  // Text format, mirroring the WAL value encoding:
  //   TABLE <name>\n COLS <n>\n per-column lines\n FKS <n>\n ... ROWS <n>\n
  // sealed by a trailing "SUM <crc32-hex8>" line over everything above.
  std::string out = "PERFDB SNAPSHOT 2\n";
  out += "WALSEQ " + std::to_string(watermark) + "\n";
  for (const auto& name : view_order_) {
    // Views serialize as their defining statement, replayed on load.
    const std::string& sql = views_.at(util::to_lower(name));
    out += "VIEW " + name + " " + std::to_string(sql.size()) + "\n";
    out += sql;
    out += "\n";
  }
  for (const auto& name : table_order_) {
    const Table& t = table(name);
    const TableSchema& schema = t.schema();
    out += "TABLE " + schema.name() + "\n";
    out += "AUTO " + std::to_string(t.next_auto_increment()) + "\n";
    out += "COLS " + std::to_string(schema.columns().size()) + "\n";
    for (const auto& column : schema.columns()) {
      out += "COL " + column.name + " " + value_type_name(column.type) + " " +
             (column.not_null ? "1" : "0") + " " + (column.primary_key ? "1" : "0") +
             " " + (column.auto_increment ? "1" : "0") + "\n";
      out += encode_value(column.default_value);
    }
    out += "FKS " + std::to_string(schema.foreign_keys().size()) + "\n";
    for (const auto& fk : schema.foreign_keys()) {
      out += "FK " + fk.column + " " + fk.parent_table + " " + fk.parent_column + "\n";
    }
    out += "ROWS " + std::to_string(t.live_row_count()) + "\n";
    t.scan([&](RowId, const Row& row) {
      for (const auto& value : row) out += encode_value(value);
    });
  }
  char sum[32];
  std::snprintf(sum, sizeof sum, "SUM %08x\n", util::crc32(out));
  out += sum;
  return out;
}

std::uint64_t Database::load_snapshot(const std::filesystem::path& path) {
  util::failpoint::evaluate("snapshot.load");
  const std::string full = util::read_file(path);
  std::uint64_t watermark = 0;

  // Verify the checksum trailer first: any bit flip in the body is
  // reported as checksum damage rather than a confusing parse error.
  // "SUM " + 8 hex digits + "\n" = 13 bytes.
  std::string text;
  bool legacy = util::starts_with(full, "PERFDB SNAPSHOT 1\n");
  if (legacy) {
    text = full;  // v1 predates the trailer; parse as-is
  } else {
    constexpr std::size_t kTrailer = 13;
    if (full.size() < kTrailer ||
        full.compare(full.size() - kTrailer, 4, "SUM ") != 0 ||
        full.back() != '\n') {
      throw ParseError("snapshot missing checksum trailer");
    }
    const std::string_view body(full.data(), full.size() - kTrailer);
    char expect[32];
    std::snprintf(expect, sizeof expect, "SUM %08x\n", util::crc32(body));
    if (full.compare(full.size() - kTrailer, kTrailer, expect) != 0) {
      throw ParseError("snapshot checksum mismatch: " + path.string());
    }
    text.assign(body);
  }

  std::size_t pos = 0;
  auto next_line = [&]() -> std::string {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) throw ParseError("snapshot truncated");
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };
  if (legacy) {
    next_line();  // header already validated
  } else {
    if (next_line() != "PERFDB SNAPSHOT 2") {
      throw ParseError("unrecognized snapshot header");
    }
    const std::string seq_line = next_line();
    if (!util::starts_with(seq_line, "WALSEQ ")) {
      throw ParseError("expected WALSEQ in snapshot");
    }
    watermark = static_cast<std::uint64_t>(
        util::parse_int_or_throw(seq_line.substr(7), "snapshot walseq"));
  }
  while (pos < text.size()) {
    std::string header = next_line();
    if (util::starts_with(header, "VIEW ")) {
      auto view_parts = util::split_ws_limit(header, 3);
      if (view_parts.size() != 3) throw ParseError("bad VIEW header in snapshot");
      const std::size_t length = static_cast<std::size_t>(
          util::parse_int_or_throw(view_parts[2], "snapshot view length"));
      if (pos + length + 1 > text.size()) {
        throw ParseError("snapshot truncated in view body");
      }
      views_.emplace(util::to_lower(view_parts[1]), text.substr(pos, length));
      view_order_.push_back(view_parts[1]);
      pos += length + 1;  // skip trailing newline
      continue;
    }
    auto parts = util::split_ws_limit(header, 2);
    if (parts.size() != 2 || parts[0] != "TABLE") {
      throw ParseError("expected TABLE header in snapshot");
    }
    TableSchema schema(parts[1]);
    std::string auto_line = next_line();
    if (!util::starts_with(auto_line, "AUTO ")) throw ParseError("expected AUTO");
    const std::int64_t next_auto =
        util::parse_int_or_throw(auto_line.substr(5), "snapshot auto");
    std::string cols_line = next_line();
    if (!util::starts_with(cols_line, "COLS ")) throw ParseError("expected COLS");
    const std::size_t n_cols = static_cast<std::size_t>(
        util::parse_int_or_throw(cols_line.substr(5), "snapshot cols"));
    for (std::size_t c = 0; c < n_cols; ++c) {
      auto col_parts = util::split_ws(next_line());
      if (col_parts.size() != 6 || col_parts[0] != "COL") {
        throw ParseError("bad COL line in snapshot");
      }
      ColumnDef column;
      column.name = col_parts[1];
      const std::string& type = col_parts[2];
      if (type == "INTEGER") column.type = ValueType::kInt;
      else if (type == "REAL") column.type = ValueType::kReal;
      else if (type == "TEXT") column.type = ValueType::kText;
      else column.type = ValueType::kNull;
      column.not_null = col_parts[3] == "1";
      column.primary_key = col_parts[4] == "1";
      column.auto_increment = col_parts[5] == "1";
      column.default_value = decode_value(text, pos);
      schema.add_column(std::move(column));
    }
    std::string fks_line = next_line();
    if (!util::starts_with(fks_line, "FKS ")) throw ParseError("expected FKS");
    const std::size_t n_fks = static_cast<std::size_t>(
        util::parse_int_or_throw(fks_line.substr(4), "snapshot fks"));
    for (std::size_t f = 0; f < n_fks; ++f) {
      auto fk_parts = util::split_ws(next_line());
      if (fk_parts.size() != 4 || fk_parts[0] != "FK") {
        throw ParseError("bad FK line in snapshot");
      }
      schema.add_foreign_key({fk_parts[1], fk_parts[2], fk_parts[3]});
    }
    std::string rows_line = next_line();
    if (!util::starts_with(rows_line, "ROWS ")) throw ParseError("expected ROWS");
    const std::size_t n_rows = static_cast<std::size_t>(
        util::parse_int_or_throw(rows_line.substr(5), "snapshot rows"));

    auto t = std::make_unique<Table>(schema);
    for (const auto& fk : schema.foreign_keys()) {
      t->create_index(schema.column_index_or_throw(fk.column), /*unique=*/false);
    }
    const std::size_t width = schema.columns().size();
    for (std::size_t r = 0; r < n_rows; ++r) {
      Row row;
      row.reserve(width);
      for (std::size_t c = 0; c < width; ++c) row.push_back(decode_value(text, pos));
      t->insert(std::move(row));
    }
    t->bump_auto_increment(next_auto);
    tables_.emplace(util::to_lower(schema.name()), std::move(t));
    table_order_.push_back(schema.name());
  }
  return watermark;
}

void Database::clear_catalog() {
  tables_.clear();
  table_order_.clear();
  views_.clear();
  view_order_.clear();
}

}  // namespace perfdmf::sqldb

