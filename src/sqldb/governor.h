// Admission control: a Database-level governor bounding the number of
// concurrently executing statements.
//
// Heavy traffic against one Database must degrade by queueing and
// shedding, not by piling an unbounded number of threads onto the lock
// manager. When configured (max_concurrent > 0), every top-level
// statement unit — a standalone statement, or a BEGIN..COMMIT
// transaction as a whole — acquires a slot before touching the database
// lock and releases it when the unit ends. Waiters form a bounded FIFO
// queue; a statement that would exceed the queue bound, or that waits
// longer than the queue timeout, is shed with DbError{kOverloaded} so
// the client can back off and retry. Waits are sliced so a queued
// statement still observes its own deadline (kTimeout) and cancel flag
// (kCancelled) promptly.
//
// Ordering discipline (deadlock freedom): admission is acquired strictly
// before the database lock and released strictly after it; statements
// running inside an already-admitted transaction bypass the governor.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "sqldb/statement_context.h"

namespace perfdmf::sqldb {

class AdmissionGovernor;

/// RAII admission slot. Empty when the governor is disabled (nothing to
/// release); movable so a Connection can hold one across a transaction.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  explicit AdmissionSlot(AdmissionGovernor* gov) : gov_(gov) {}
  AdmissionSlot(AdmissionSlot&& other) noexcept : gov_(other.gov_) {
    other.gov_ = nullptr;
  }
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
    if (this != &other) {
      release();
      gov_ = other.gov_;
      other.gov_ = nullptr;
    }
    return *this;
  }
  ~AdmissionSlot() { release(); }

  void release();
  bool held() const { return gov_ != nullptr; }

 private:
  AdmissionGovernor* gov_ = nullptr;
};

class AdmissionGovernor {
 public:
  struct Config {
    int max_concurrent = 0;      // 0 = unlimited (governor disabled)
    int max_queue = 64;          // waiters beyond this are shed immediately
    int queue_timeout_ms = 1000; // longest a statement waits for a slot
  };

  /// PERFDMF_MAX_CONCURRENT_STMTS (0/unset = disabled), with optional
  /// PERFDMF_ADMISSION_QUEUE / PERFDMF_ADMISSION_QUEUE_MS overrides.
  static Config config_from_env();

  AdmissionGovernor() = default;
  explicit AdmissionGovernor(const Config& cfg) { configure(cfg); }
  AdmissionGovernor(const AdmissionGovernor&) = delete;
  AdmissionGovernor& operator=(const AdmissionGovernor&) = delete;

  void configure(const Config& cfg);
  Config config() const;
  bool limited() const { return limited_.load(std::memory_order_relaxed); }

  /// Acquire an execution slot (FIFO). Returns an empty slot when the
  /// governor is disabled. Throws DbError{kOverloaded} on queue-full or
  /// queue-timeout shedding; DbError{kTimeout|kCancelled} if the
  /// statement's own governance fires while queued.
  AdmissionSlot admit(StatementContext* ctx);

  /// Statements currently holding slots (diagnostics/tests).
  int running() const;
  /// Statements currently queued (diagnostics/tests).
  int queued() const;

 private:
  friend class AdmissionSlot;
  void release();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Config cfg_;
  // Mirrors cfg_.max_concurrent > 0 so the disabled fast path is one
  // relaxed load, no mutex.
  std::atomic<bool> limited_{false};
  int running_ = 0;
  std::deque<std::uint64_t> queue_;  // FIFO of waiting ticket ids
  std::uint64_t next_ticket_ = 0;
};

}  // namespace perfdmf::sqldb
