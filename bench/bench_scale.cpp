// E1 — scale study (paper §3.1 and §5.3, Miranda on BlueGene/L).
//
// Claim reproduced: "101 events on 16K processors ... the 16K processor
// run consisted of over 1.6 million data points, and the PerfDMF API was
// able to handle the data without problems."
//
// For each processor count we generate a 101-event single-metric trial,
// bulk-load it through the API, and run representative queries. The paper
// reports no absolute numbers — the shape to reproduce is: row counts grow
// to ~1.6M, load time stays near-linear in rows, and queries stay usable.
//
// Usage: bench_scale [--quick]   (--quick stops at 4K processors)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/database_session.h"
#include "bench_json.h"
#include "io/synth.h"
#include "util/timer.h"

using namespace perfdmf;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::BenchJson json("scale");
  std::vector<std::int32_t> sizes{256, 1024, 4096};
  if (!quick) {
    sizes.push_back(8192);
    sizes.push_back(16384);
  }

  std::printf("E1: Miranda-style scale study (101 events, 1 metric)\n");
  std::printf("%8s %12s %10s %12s %12s %12s %12s\n", "procs", "points",
              "gen(s)", "load(s)", "rows/s", "event-q(ms)", "agg-q(ms)");

  for (std::int32_t procs : sizes) {
    io::synth::TrialSpec spec;
    spec.name = "miranda." + std::to_string(procs) + "p";
    spec.nodes = procs;
    spec.event_count = 101;
    spec.imbalance = 0.08;

    util::WallTimer timer;
    auto trial = io::synth::generate_trial(spec);
    const double generate_seconds = timer.seconds();
    const std::size_t points = trial.interval_point_count();

    api::DatabaseSession session;  // fresh in-memory archive per size
    timer.reset();
    const std::int64_t trial_id = session.save_trial(trial, "miranda", "bgl");
    const double load_seconds = timer.seconds();

    // Query 1: event list for the trial (ParaProf's first request).
    timer.reset();
    auto events = session.get_interval_events();
    const double event_query_ms = timer.millis();

    // Query 2: SQL aggregate across all threads of the hottest event.
    timer.reset();
    auto aggregate = session.api().aggregate_interval_column(
        trial_id, events.front().id, "exclusive");
    const double aggregate_ms = timer.millis();

    std::printf("%8d %12zu %10.2f %12.2f %12.0f %12.2f %12.2f\n", procs, points,
                generate_seconds, load_seconds,
                static_cast<double>(points) / load_seconds, event_query_ms,
                aggregate_ms);
    (void)aggregate;

    const std::string prefix = "p" + std::to_string(procs) + "_";
    json.set(prefix + "load_s", load_seconds);
    json.set(prefix + "load_rows_per_s",
             static_cast<double>(points) / load_seconds);
    json.set(prefix + "aggregate_ms", aggregate_ms);
  }
  std::printf("\npaper claim: 16384 procs x 101 events = ~1.65M points handled"
              " without problems\n");

  // ---- E1b: many experiments in one archive ---------------------------
  // Paper objective: "Handle large-scale profile data and large numbers
  // of experiments." One archive accumulates T trials; listing and
  // cross-trial queries must stay fast as the archive grows.
  std::printf("\nE1b: archive growth (trials of 16 events x 64 procs)\n");
  std::printf("%8s %12s %12s %14s %16s\n", "trials", "rows", "store(s)",
              "list-all(ms)", "one-trial-q(ms)");
  api::DatabaseSession archive;
  std::size_t total_rows = 0;
  std::int64_t probe_trial = -1;
  util::WallTimer store_timer;
  double store_seconds = 0.0;
  for (int batch : {10, 40, 50}) {  // cumulative: 10, 50, 100
    store_timer.reset();
    for (int i = 0; i < batch; ++i) {
      io::synth::TrialSpec spec;
      spec.nodes = 64;
      spec.event_count = 16;
      spec.seed = static_cast<std::uint64_t>(total_rows + i);
      spec.name = "trial_" + std::to_string(total_rows + i);
      const std::int64_t id =
          archive.save_trial(io::synth::generate_trial(spec), "suite",
                             "experiment_" + std::to_string(i % 4));
      if (probe_trial < 0) probe_trial = id;
      total_rows += 16 * 64;
    }
    store_seconds += store_timer.seconds();

    util::WallTimer timer;
    archive.clear_application();
    archive.clear_experiment();
    const std::size_t n_trials = archive.get_trial_list().size();
    const double list_ms = timer.millis();

    timer.reset();
    auto events = archive.api().get_interval_events(probe_trial);
    auto aggregate = archive.api().aggregate_interval_column(
        probe_trial, events.front().id, "exclusive");
    const double query_ms = timer.millis();
    (void)aggregate;

    std::printf("%8zu %12zu %12.2f %14.2f %16.2f\n", n_trials, total_rows,
                store_seconds, list_ms, query_ms);

    const std::string prefix = "archive" + std::to_string(n_trials) + "_";
    json.set(prefix + "list_ms", list_ms);
    json.set(prefix + "one_trial_query_ms", query_ms);
  }
  std::printf("\npaper objective: queries against one trial stay flat as the"
              " archive accumulates experiments\n");
  json.write();
  return 0;
}
