// Multi-trial comparison (paper §4: "rudimentary multi-trial analysis,
// including performance comparisons"): align two or more trials on event
// name and report per-event mean values side by side, with ratios against
// the first trial.
#pragma once

#include <string>
#include <vector>

#include "profile/trial_data.h"

namespace perfdmf::analysis {

struct ComparisonRow {
  std::string event_name;
  /// Mean-over-threads value per trial (NaN-free: absent events get -1).
  std::vector<double> mean_exclusive;
  /// mean_exclusive[i] / mean_exclusive[0]; -1 when either side is absent.
  std::vector<double> ratio_to_first;
};

struct ComparisonReport {
  std::vector<std::string> trial_names;
  std::vector<ComparisonRow> rows;  // sorted by first trial's value, desc
};

/// `metric_name` must exist in every trial.
ComparisonReport compare_trials(const std::vector<const profile::TrialData*>& trials,
                                const std::string& metric_name = "TIME");

std::string format_comparison_table(const ComparisonReport& report);

}  // namespace perfdmf::analysis
