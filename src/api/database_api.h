// DatabaseAPI: PerfDMF's query-and-management layer over the profile
// database (paper §4) — a programmatic, non-SQL interface that analysis
// tools use instead of hand-written queries. Analysis code that wants raw
// SQL can still use the Connection directly; the two interfaces coexist.
//
// Flexible schema: save_* writes any model `fields` whose column exists
// on the table (optionally ALTERing missing columns in), and load_*
// returns every non-core column as a field — both via DatabaseMetaData,
// never via hard-coded column lists.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "profile/data_model.h"
#include "profile/summary.h"
#include "profile/trial_data.h"
#include "sqldb/connection.h"

namespace perfdmf::api {

/// Row shape returned by interval-data queries.
struct IntervalProfileRow {
  std::int64_t event_id = profile::kNoId;
  std::string event_name;
  profile::ThreadId thread;
  std::int64_t metric_id = profile::kNoId;
  profile::IntervalDataPoint data;
};

struct AtomicProfileRow {
  std::int64_t event_id = profile::kNoId;
  std::string event_name;
  profile::ThreadId thread;
  profile::AtomicDataPoint data;
};

/// SQL-style aggregate summary of one column across a filtered query
/// (paper §5.2: "standard SQL aggregate operations such as minimum,
/// maximum, mean, standard deviation").
struct AggregateSummary {
  std::size_t count = 0;
  double minimum = 0.0;
  double maximum = 0.0;
  double mean = 0.0;
  double std_dev = 0.0;
};

class DatabaseAPI {
 public:
  /// Bootstraps the schema when missing.
  explicit DatabaseAPI(std::shared_ptr<sqldb::Connection> connection);

  sqldb::Connection& connection() { return *connection_; }
  /// The shared connection handle (for components spawning their own
  /// lightweight connections over the same database).
  const std::shared_ptr<sqldb::Connection>& connection_ptr() const {
    return connection_;
  }

  // ----- application / experiment / trial management -------------------
  std::vector<profile::Application> list_applications();
  std::optional<profile::Application> get_application(std::int64_t id);
  std::optional<profile::Application> find_application(const std::string& name);
  /// Insert (id == kNoId) or update; assigns app.id. When `extend_schema`
  /// is set, unknown fields become new TEXT columns (ALTER TABLE).
  void save_application(profile::Application& app, bool extend_schema = false);

  std::vector<profile::Experiment> list_experiments(std::int64_t application_id);
  std::optional<profile::Experiment> get_experiment(std::int64_t id);
  void save_experiment(profile::Experiment& experiment, bool extend_schema = false);

  std::vector<profile::Trial> list_trials(std::int64_t experiment_id);
  std::optional<profile::Trial> get_trial(std::int64_t id);
  void save_trial(profile::Trial& trial, bool extend_schema = false);
  /// Delete a trial with everything under it (profiles, events, metrics).
  void delete_trial(std::int64_t trial_id);

  // ----- bulk trial upload / load --------------------------------------
  /// Store a full parsed profile under `experiment_id`. Writes the trial
  /// row, metrics, events, every location profile, and the total/mean
  /// summary tables, inside one transaction. Returns the new trial id.
  /// With `extend_schema`, trial metadata fields (e.g. TAU's <metadata>
  /// attributes) become columns on the TRIAL table as needed.
  std::int64_t upload_trial(const profile::TrialData& data,
                            std::int64_t experiment_id,
                            bool extend_schema = false);

  /// Load a complete trial back into the in-memory representation.
  profile::TrialData load_trial(std::int64_t trial_id);

  // ----- selective queries (database-only access method, paper §4) ------
  std::vector<profile::Metric> get_metrics(std::int64_t trial_id);
  std::vector<profile::IntervalEvent> get_interval_events(std::int64_t trial_id);
  std::vector<profile::AtomicEvent> get_atomic_events(std::int64_t trial_id);

  /// Filter for data-point queries; unset members match everything.
  struct DataFilter {
    std::optional<std::int64_t> metric_id;
    std::optional<std::int32_t> node;
    std::optional<std::int32_t> context;
    std::optional<std::int32_t> thread;
    std::optional<std::int64_t> event_id;
    /// Restrict to events of one group (e.g. "MPI", "computation").
    std::optional<std::string> event_group;
  };
  std::vector<IntervalProfileRow> get_interval_data(std::int64_t trial_id,
                                                    const DataFilter& filter = {});
  std::vector<AtomicProfileRow> get_atomic_data(std::int64_t trial_id,
                                                const DataFilter& filter = {});

  /// Aggregate a profile column ("inclusive", "exclusive", "num_calls",
  /// ...) per event over all threads matching `filter`.
  AggregateSummary aggregate_interval_column(std::int64_t trial_id,
                                             std::int64_t event_id,
                                             const std::string& column,
                                             const DataFilter& filter = {});

  // ----- derived metrics (paper §3.2 / §4) -------------------------------
  /// Append a new (derived) metric's data points to an existing trial.
  /// `data` must contain the metric `metric_name`; event names are matched
  /// against the trial's stored events. Returns the new metric id.
  std::int64_t save_derived_metric(std::int64_t trial_id,
                                   const profile::TrialData& data,
                                   const std::string& metric_name);

  // ----- analysis results (PerfExplorer extension, paper §5.3) ----------
  std::int64_t save_analysis_result(std::int64_t trial_id, const std::string& name,
                                    const std::string& kind,
                                    const std::string& content);
  struct AnalysisResult {
    std::int64_t id;
    std::string name;
    std::string kind;
    std::string content;
  };
  std::vector<AnalysisResult> list_analysis_results(std::int64_t trial_id);

 private:
  profile::Metadata read_fields(const std::string& table, sqldb::ResultSet& rs,
                                const std::vector<std::string>& core_columns);
  void save_row_with_fields(const std::string& table,
                            const std::vector<std::pair<std::string, sqldb::Value>>&
                                core_values,
                            std::int64_t& id, const profile::Metadata& fields,
                            bool extend_schema);

  std::shared_ptr<sqldb::Connection> connection_;
};

}  // namespace perfdmf::api
