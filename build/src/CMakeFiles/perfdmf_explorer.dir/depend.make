# Empty dependencies file for perfdmf_explorer.
# This may be replaced when dependencies are built.
