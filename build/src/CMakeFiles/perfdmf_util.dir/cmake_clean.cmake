file(REMOVE_RECURSE
  "CMakeFiles/perfdmf_util.dir/util/file.cpp.o"
  "CMakeFiles/perfdmf_util.dir/util/file.cpp.o.d"
  "CMakeFiles/perfdmf_util.dir/util/log.cpp.o"
  "CMakeFiles/perfdmf_util.dir/util/log.cpp.o.d"
  "CMakeFiles/perfdmf_util.dir/util/strings.cpp.o"
  "CMakeFiles/perfdmf_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/perfdmf_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/perfdmf_util.dir/util/thread_pool.cpp.o.d"
  "libperfdmf_util.a"
  "libperfdmf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfdmf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
