// Tests for the PerfDMF common XML representation (export/import).
#include <gtest/gtest.h>

#include "io/synth.h"
#include "io/xml_io.h"
#include "util/error.h"
#include "util/file.h"

using namespace perfdmf;
using namespace perfdmf::io;

namespace {

/// Structural equality of the parts the XML stores.
void expect_equivalent(const profile::TrialData& a, const profile::TrialData& b) {
  EXPECT_EQ(a.trial().name, b.trial().name);
  EXPECT_EQ(a.trial().fields, b.trial().fields);
  ASSERT_EQ(a.metrics().size(), b.metrics().size());
  for (std::size_t m = 0; m < a.metrics().size(); ++m) {
    EXPECT_EQ(a.metrics()[m].name, b.metrics()[m].name);
    EXPECT_EQ(a.metrics()[m].derived, b.metrics()[m].derived);
  }
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t e = 0; e < a.events().size(); ++e) {
    EXPECT_EQ(a.events()[e].name, b.events()[e].name);
    EXPECT_EQ(a.events()[e].group, b.events()[e].group);
  }
  ASSERT_EQ(a.threads().size(), b.threads().size());
  ASSERT_EQ(a.interval_point_count(), b.interval_point_count());
  a.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                          const profile::IntervalDataPoint& p) {
    const auto* q = b.interval_data(e, t, m);
    ASSERT_NE(q, nullptr);
    EXPECT_DOUBLE_EQ(p.inclusive, q->inclusive);
    EXPECT_DOUBLE_EQ(p.exclusive, q->exclusive);
    EXPECT_DOUBLE_EQ(p.num_calls, q->num_calls);
    EXPECT_DOUBLE_EQ(p.num_subrs, q->num_subrs);
  });
  ASSERT_EQ(a.atomic_point_count(), b.atomic_point_count());
  a.for_each_atomic([&](std::size_t e, std::size_t t,
                        const profile::AtomicDataPoint& p) {
    const auto* q = b.atomic_data(e, t);
    ASSERT_NE(q, nullptr);
    EXPECT_DOUBLE_EQ(p.mean, q->mean);
    EXPECT_DOUBLE_EQ(p.std_dev, q->std_dev);
  });
}

}  // namespace

TEST(PerfdmfXml, RoundTripSmallTrial) {
  synth::TrialSpec spec;
  spec.nodes = 3;
  spec.event_count = 6;
  spec.extra_metrics = {"PAPI_FP_OPS"};
  spec.atomic_event_count = 2;
  auto original = synth::generate_trial(spec);
  original.trial().fields["compiler"] = "xlf 8.1";
  original.trial().fields["problem size"] = "128^3";

  auto reloaded = import_xml(export_xml(original));
  expect_equivalent(original, reloaded);
}

TEST(PerfdmfXml, RoundTripViaFileAndDataSource) {
  synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 4;
  auto original = synth::generate_trial(spec);

  util::ScopedTempDir dir;
  const auto file = dir.path() / "trial.xml";
  util::write_file(file, export_xml(original));
  auto reloaded = XmlDataSource(file).load();
  expect_equivalent(original, reloaded);
}

TEST(PerfdmfXml, SpecialCharactersInNamesSurvive) {
  profile::TrialData trial;
  trial.trial().name = "trial <with> \"specials\" & 'quotes'";
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t e =
      trial.intern_event("void f<T>(A&, B) [\"file\"]", "g<&>");
  const std::size_t t = trial.intern_thread({0, 0, 0});
  profile::IntervalDataPoint p;
  p.inclusive = 1.0;
  trial.set_interval_data(e, t, m, p);

  auto reloaded = import_xml(export_xml(trial));
  EXPECT_EQ(reloaded.trial().name, trial.trial().name);
  EXPECT_EQ(reloaded.events()[0].name, trial.events()[0].name);
  EXPECT_EQ(reloaded.events()[0].group, "g<&>");
}

TEST(PerfdmfXml, PercentagesRecomputedOnImport) {
  profile::TrialData trial;
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t e1 = trial.intern_event("main");
  const std::size_t e2 = trial.intern_event("half");
  const std::size_t t = trial.intern_thread({0, 0, 0});
  profile::IntervalDataPoint p;
  p.inclusive = 100.0;
  p.exclusive = 50.0;
  trial.set_interval_data(e1, t, m, p);
  p.inclusive = 50.0;
  p.exclusive = 50.0;
  trial.set_interval_data(e2, t, m, p);

  auto reloaded = import_xml(export_xml(trial));
  EXPECT_DOUBLE_EQ(reloaded.interval_data(e2, t, m)->inclusive_pct, 50.0);
}

TEST(PerfdmfXml, MalformedDocumentsThrow) {
  EXPECT_THROW(import_xml("<wrong_root/>"), ParseError);
  EXPECT_THROW(import_xml("<perfdmf_profile><p e=\"0\" t=\"0\" m=\"0\""
                          " incl=\"1\" excl=\"1\" calls=\"0\" subrs=\"0\"/>"
                          "</perfdmf_profile>"),
               ParseError);  // <p> before any metric/event/thread declared
  EXPECT_THROW(import_xml("<perfdmf_profile>"), ParseError);  // truncated
}

TEST(PerfdmfXml, MissingAttributeThrows) {
  EXPECT_THROW(import_xml("<perfdmf_profile><metrics>"
                          "<metric id=\"0\"/>"  // no name
                          "</metrics></perfdmf_profile>"),
               ParseError);
}

TEST(PerfdmfXml, EmptyTrialExportsAndImports) {
  profile::TrialData empty;
  empty.trial().name = "empty";
  auto reloaded = import_xml(export_xml(empty));
  EXPECT_EQ(reloaded.trial().name, "empty");
  EXPECT_EQ(reloaded.interval_point_count(), 0u);
}
