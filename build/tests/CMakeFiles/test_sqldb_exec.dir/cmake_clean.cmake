file(REMOVE_RECURSE
  "CMakeFiles/test_sqldb_exec.dir/test_sqldb_exec.cpp.o"
  "CMakeFiles/test_sqldb_exec.dir/test_sqldb_exec.cpp.o.d"
  "test_sqldb_exec"
  "test_sqldb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sqldb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
