// E2 — multi-format import (paper §3.1: embedded translators for six
// profile formats into one common representation).
//
// For each supported format we synthesize equivalent on-disk output, then
// measure parse time and verify the imported shape. The paper reports no
// numbers; the property reproduced is that all six tool formats land in
// the same representation and import at practical speeds.
#include <cstdio>
#include <functional>

#include "bench_json.h"
#include "io/detect.h"
#include "io/dynaprof_format.h"
#include "io/hpm_format.h"
#include "io/psrun_format.h"
#include "io/synth.h"
#include "util/file.h"
#include "util/timer.h"

using namespace perfdmf;
using namespace perfdmf::io;

int main() {
  perfdmf::bench::BenchJson json("import");
  util::ScopedTempDir scratch("perfdmf-bench-import");
  constexpr std::int32_t kNodes = 32;
  constexpr std::size_t kEvents = 24;

  std::printf("E2: import of six profile formats (%d processes, %zu events)\n",
              kNodes, kEvents);
  std::printf("%-12s %10s %10s %10s %10s %12s\n", "format", "files", "events",
              "threads", "points", "parse(ms)");

  struct Case {
    const char* name;
    std::function<std::filesystem::path()> write;
    std::function<profile::TrialData(const std::filesystem::path&)> read;
  };

  synth::TrialSpec spec;
  spec.nodes = kNodes;
  spec.event_count = kEvents;

  const std::vector<Case> cases = {
      {"tau",
       [&] {
         auto trial = synth::generate_trial(spec);
         const auto dir = scratch.path() / "tau";
         synth::write_as_tau(trial, dir);
         return dir;
       },
       [](const std::filesystem::path& p) { return load_profile(p); }},
      {"gprof",
       [&] {
         synth::TrialSpec single = spec;
         single.nodes = 1;  // gprof is sequential
         auto trial = synth::generate_trial(single);
         const auto file = scratch.path() / "gmon.out.txt";
         synth::write_as_gprof(trial, file);
         return file;
       },
       [](const std::filesystem::path& p) { return load_profile(p); }},
      {"mpip",
       [&] {
         auto trial = synth::generate_mpip_style_trial(spec);
         const auto file = scratch.path() / "run.mpiP";
         synth::write_as_mpip(trial, file);
         return file;
       },
       [](const std::filesystem::path& p) { return load_profile(p); }},
      {"dynaprof",
       [&] {
         auto trial = synth::generate_trial(spec);
         const auto dir = scratch.path() / "dynaprof";
         synth::write_as_dynaprof(trial, dir);
         return dir;
       },
       [](const std::filesystem::path& p) {
         profile::TrialData merged;
         for (const auto& file : util::list_files(p)) {
           DynaprofDataSource::parse_into(util::read_file(file), merged);
         }
         merged.infer_dimensions();
         merged.recompute_derived_fields();
         return merged;
       }},
      {"hpmtoolkit",
       [&] {
         auto trial = synth::generate_trial(spec);
         const auto dir = scratch.path() / "hpm";
         synth::write_as_hpm(trial, dir);
         return dir;
       },
       [](const std::filesystem::path& p) {
         profile::TrialData merged;
         for (const auto& file : util::list_files(p)) {
           HpmDataSource::parse_into(util::read_file(file), merged);
         }
         merged.infer_dimensions();
         merged.recompute_derived_fields();
         return merged;
       }},
      {"psrun",
       [&] {
         synth::TrialSpec counting = spec;
         counting.extra_metrics = {"PAPI_TOT_CYC", "PAPI_FP_OPS",
                                   "PAPI_L1_DCM"};
         auto trial = synth::generate_psrun_style_trial(counting);
         const auto dir = scratch.path() / "psrun";
         synth::write_as_psrun(trial, dir);
         return dir;
       },
       [](const std::filesystem::path& p) {
         profile::TrialData merged;
         for (const auto& file : util::list_files(p)) {
           PsrunDataSource::parse_into(util::read_file(file), merged);
         }
         merged.infer_dimensions();
         merged.recompute_derived_fields();
         return merged;
       }},
  };

  for (const auto& test_case : cases) {
    const auto path = test_case.write();
    std::size_t files = 1;
    if (std::filesystem::is_directory(path)) {
      files = util::list_files(path).size();
      if (files == 0) {  // TAU multi-metric layout nests directories
        for (const auto& entry : std::filesystem::directory_iterator(path)) {
          if (entry.is_directory()) files += util::list_files(entry).size();
        }
      }
    }
    util::WallTimer timer;
    auto trial = test_case.read(path);
    const double parse_ms = timer.millis();
    std::printf("%-12s %10zu %10zu %10zu %10zu %12.2f\n", test_case.name, files,
                trial.events().size(), trial.threads().size(),
                trial.interval_point_count(), parse_ms);
    json.set(std::string(test_case.name) + "_parse_ms", parse_ms);
    json.set(std::string(test_case.name) + "_points",
             static_cast<double>(trial.interval_point_count()));
  }
  std::printf("\nall six formats parse into the common representation"
              " (paper objective: import/export for leading tools)\n");
  json.write();
  return 0;
}
