file(REMOVE_RECURSE
  "CMakeFiles/paraprof_text.dir/paraprof_text.cpp.o"
  "CMakeFiles/paraprof_text.dir/paraprof_text.cpp.o.d"
  "paraprof_text"
  "paraprof_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paraprof_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
