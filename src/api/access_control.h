// Access authorization for shared performance repositories.
//
// Paper §5.1: a PerfDMF archive "could be made available in one physical
// location for all analysts within an organization. Given PerfDMF's
// design, it would be a simple matter to implement access authorization
// to enforce different policies for performance data security and
// sharing." This module is that simple matter: a policy maps users to
// per-application permissions, and AuthorizedSession enforces it in
// front of a DatabaseSession.
//
// Semantics:
//  - Permissions: kNone < kRead < kWrite.
//  - Rules name an application by exact name or the wildcard "*".
//    The most specific matching rule wins (exact beats wildcard); with
//    no matching rule the default permission applies.
//  - Reads of the application list are filtered, not rejected: a user
//    sees only the applications they may read — the natural behaviour
//    for a shared repository browser.
//  - Unauthorized operations throw AccessDenied.
#pragma once

#include <map>
#include <string>

#include "api/database_session.h"
#include "util/error.h"

namespace perfdmf::api {

class AccessDenied : public Error {
 public:
  explicit AccessDenied(const std::string& what) : Error("access denied: " + what) {}
};

enum class Permission { kNone = 0, kRead = 1, kWrite = 2 };

class AccessPolicy {
 public:
  /// Grant `user` the permission on applications named `application`
  /// ("*" = every application).
  void grant(const std::string& user, const std::string& application,
             Permission permission);

  void set_default(Permission permission) { default_ = permission; }

  Permission permission_for(const std::string& user,
                            const std::string& application) const;

 private:
  // user -> application (or "*") -> permission
  std::map<std::string, std::map<std::string, Permission>> rules_;
  Permission default_ = Permission::kNone;
};

/// A per-user view of a shared archive. Wraps (and shares) the underlying
/// session; all checks are by application name.
class AuthorizedSession {
 public:
  AuthorizedSession(std::shared_ptr<sqldb::Connection> connection,
                    AccessPolicy policy, std::string user);

  /// Applications this user may read.
  std::vector<profile::Application> get_application_list();
  /// Experiments / trials under an application (read permission required).
  std::vector<profile::Experiment> get_experiment_list(
      const std::string& application_name);
  std::vector<profile::Trial> get_trial_list(const std::string& application_name,
                                             std::int64_t experiment_id);

  /// Load a full trial (read permission on its owning application).
  profile::TrialData load_trial(std::int64_t trial_id);

  /// Store a trial (write permission on the application).
  std::int64_t save_trial(const profile::TrialData& data,
                          const std::string& application_name,
                          const std::string& experiment_name);

  /// Delete a trial (write permission on its owning application).
  void delete_trial(std::int64_t trial_id);

  const std::string& user() const { return user_; }

 private:
  Permission require(const std::string& application_name, Permission needed,
                     const char* operation);
  std::string application_of_trial(std::int64_t trial_id);

  DatabaseSession session_;
  AccessPolicy policy_;
  std::string user_;
};

}  // namespace perfdmf::api
