file(REMOVE_RECURSE
  "CMakeFiles/speedup_analyzer.dir/speedup_analyzer.cpp.o"
  "CMakeFiles/speedup_analyzer.dir/speedup_analyzer.cpp.o.d"
  "speedup_analyzer"
  "speedup_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
