#include "perfguard/perfguard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.h"
#include "util/file.h"
#include "util/json.h"

namespace perfdmf::perfguard {

namespace {

/// Highest BENCH json layout this loader understands (bench/bench_json.h
/// documents the versions). Older files load fine; a newer file means a
/// newer emitter and the comparison could be silently wrong — refuse.
constexpr std::int64_t kMaxSchemaVersion = 2;

/// Glob with a single '*' anywhere (start, middle, end): the text must
/// carry the pattern's prefix and suffix around any gap. Multiple stars
/// are rejected at rule-parse time — gate rules don't need a glob engine.
bool matches_pattern(std::string_view pattern, std::string_view text) {
  const std::size_t star = pattern.find('*');
  if (star == std::string_view::npos) return pattern == text;
  const std::string_view prefix = pattern.substr(0, star);
  const std::string_view suffix = pattern.substr(star + 1);
  return text.size() >= prefix.size() + suffix.size() &&
         text.substr(0, prefix.size()) == prefix &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace

BenchRun parse_bench_json(std::string_view text) {
  const util::json::Value doc = util::json::parse(text);
  if (!doc.is_object()) throw ParseError("BENCH json: document is not an object");

  BenchRun run;
  const util::json::Value* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->as_string().empty()) {
    throw ParseError("BENCH json: missing \"bench\" name");
  }
  run.bench = bench->as_string();
  if (const auto* v = doc.find("git_sha"); v != nullptr && v->is_string()) {
    run.git_sha = v->as_string();
  }
  if (const auto* v = doc.find("timestamp"); v != nullptr && v->is_string()) {
    run.timestamp = v->as_string();
  }
  if (const auto* v = doc.find("schema_version"); v != nullptr) {
    run.schema_version = static_cast<std::int64_t>(v->as_number());
    if (run.schema_version > kMaxSchemaVersion) {
      throw ParseError("BENCH json: schema_version " +
                       std::to_string(run.schema_version) +
                       " is newer than this perfguard understands (max " +
                       std::to_string(kMaxSchemaVersion) + ")");
    }
  }
  const util::json::Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    throw ParseError("BENCH json: missing \"metrics\" object");
  }
  for (const auto& [name, value] : metrics->as_object()) {
    if (value.is_null()) continue;  // non-finite at emit time — unusable
    run.metrics.emplace_back(name, value.as_number());
  }
  return run;
}

BenchRun load_bench_file(const std::filesystem::path& path) {
  try {
    return parse_bench_json(util::read_file(path));
  } catch (const ParseError& e) {
    throw ParseError(path.string() + ": " + e.what());
  }
}

bool lower_is_better(std::string_view metric) {
  for (std::string_view suffix : {"_ms", "_micros", "_us", "_ns"}) {
    if (metric.size() > suffix.size() &&
        metric.substr(metric.size() - suffix.size()) == suffix) {
      return true;
    }
  }
  return false;
}

std::vector<GateRule> parse_gate_rules(std::string_view text) {
  std::vector<GateRule> rules;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= line.size()) {
      throw ParseError("gate rule '" + std::string(line) +
                       "' is not bench:metric");
    }
    const std::string_view bench = line.substr(0, colon);
    const std::string_view metric = line.substr(colon + 1);
    if (std::count(bench.begin(), bench.end(), '*') > 1 ||
        std::count(metric.begin(), metric.end(), '*') > 1) {
      // A typo'd extra star would otherwise never match and silently
      // ungate the metric.
      throw ParseError("gate rule '" + std::string(line) +
                       "' has more than one '*' on a side");
    }
    rules.push_back(GateRule{std::string(bench), std::string(metric)});
  }
  return rules;
}

bool is_gated(const std::vector<GateRule>& rules, std::string_view bench,
              std::string_view metric) {
  for (const GateRule& rule : rules) {
    if (matches_pattern(rule.bench, bench) &&
        matches_pattern(rule.metric, metric)) {
      return true;
    }
  }
  return false;
}

PerfDb::PerfDb() : connection_(std::make_shared<sqldb::Connection>()) {
  ensure_schema();
}

PerfDb::PerfDb(const std::filesystem::path& directory)
    : connection_(std::make_shared<sqldb::Connection>(directory)) {
  ensure_schema();
}

PerfDb::PerfDb(std::shared_ptr<sqldb::Connection> connection)
    : connection_(std::move(connection)) {
  ensure_schema();
}

void PerfDb::ensure_schema() {
  connection_->execute_update(
      "CREATE TABLE IF NOT EXISTS perf_runs ("
      " id INTEGER PRIMARY KEY,"
      " bench TEXT NOT NULL,"
      " git_sha TEXT,"
      " timestamp TEXT,"
      " schema_version INTEGER,"
      " kind TEXT NOT NULL)");
  connection_->execute_update(
      "CREATE TABLE IF NOT EXISTS perf_metrics ("
      " id INTEGER PRIMARY KEY,"
      " run INTEGER NOT NULL,"
      " name TEXT NOT NULL,"
      " value REAL)");
}

std::int64_t PerfDb::record_run(const BenchRun& run, std::string_view kind) {
  if (kind != "baseline" && kind != "current") {
    throw InvalidArgument("perf run kind must be 'baseline' or 'current'");
  }
  connection_->begin();
  try {
    connection_->execute_update(
        "INSERT INTO perf_runs (bench, git_sha, timestamp, schema_version,"
        " kind) VALUES (?, ?, ?, ?, ?)",
        {sqldb::Value(run.bench), sqldb::Value(run.git_sha),
         sqldb::Value(run.timestamp), sqldb::Value(run.schema_version),
         sqldb::Value(std::string(kind))});
    auto rs = connection_->execute("SELECT MAX(id) FROM perf_runs");
    rs.next();
    const std::int64_t run_id = rs.get_int(1);
    auto insert = connection_->prepare(
        "INSERT INTO perf_metrics (run, name, value) VALUES (?, ?, ?)");
    for (const auto& [name, value] : run.metrics) {
      insert.set_int(1, run_id);
      insert.set_string(2, name);
      insert.set_double(3, value);
      insert.execute_update();
    }
    connection_->commit();
    return run_id;
  } catch (...) {
    connection_->rollback();
    throw;
  }
}

std::int64_t PerfDb::latest_run(std::string_view bench, std::string_view kind) {
  auto rs = connection_->execute(
      "SELECT MAX(id) FROM perf_runs WHERE bench = ? AND kind = ?",
      {sqldb::Value(std::string(bench)), sqldb::Value(std::string(kind))});
  if (!rs.next() || rs.is_null(1)) return -1;
  return rs.get_int(1);
}

std::vector<std::string> PerfDb::benches_with(std::string_view kind) {
  auto rs = connection_->execute(
      "SELECT DISTINCT bench FROM perf_runs WHERE kind = ? ORDER BY bench",
      {sqldb::Value(std::string(kind))});
  std::vector<std::string> benches;
  while (rs.next()) benches.push_back(rs.get_string(1));
  return benches;
}

Report PerfDb::compare(double threshold_pct,
                       const std::vector<GateRule>& gates) {
  Report report;
  report.threshold_pct = threshold_pct;

  for (const std::string& bench : benches_with("current")) {
    const std::int64_t current_id = latest_run(bench, "current");
    const std::int64_t baseline_id = latest_run(bench, "baseline");
    if (baseline_id < 0) {
      report.first_run_benches.push_back(bench);
      continue;
    }

    // The delta itself is SQL: baseline rows LEFT JOINed to the current
    // run, relative change computed by the engine (NULL current or a
    // zero baseline yields a NULL delta, surfaced via is_null below).
    auto rs = connection_->execute(
        "SELECT b.name, b.value, c.value,"
        " (c.value - b.value) * 100.0 / b.value"
        " FROM perf_metrics b LEFT JOIN perf_metrics c"
        " ON c.name = b.name AND c.run = ?"
        " WHERE b.run = ? ORDER BY b.name",
        {sqldb::Value(current_id), sqldb::Value(baseline_id)});
    while (rs.next()) {
      Delta d;
      d.bench = bench;
      d.metric = rs.get_string(1);
      d.baseline = rs.get_double(2);
      d.lower_better = lower_is_better(d.metric);
      d.gated = is_gated(gates, bench, d.metric);
      if (rs.is_null(3)) {
        d.missing_current = true;
        if (d.gated) ++report.missing;
      } else {
        d.current = rs.get_double(3);
        if (!rs.is_null(4)) {
          d.delta_pct = rs.get_double(4);
        } else if (d.current != 0.0) {
          // Baseline 0, current not: direction is unambiguous even if a
          // percentage is not representable.
          d.delta_pct = d.lower_better ? threshold_pct + 100.0
                                       : -(threshold_pct + 100.0);
        }
        const double worse = d.lower_better ? d.delta_pct : -d.delta_pct;
        d.regressed = d.gated && worse > threshold_pct;
        if (d.regressed) ++report.regressions;
      }
      report.deltas.push_back(std::move(d));
    }

    // Metrics this run produced that the baseline has never seen —
    // advisory only, and the cue to re-record the baseline.
    rs = connection_->execute(
        "SELECT c.name, c.value FROM perf_metrics c"
        " LEFT JOIN perf_metrics b ON b.name = c.name AND b.run = ?"
        " WHERE c.run = ? AND b.name IS NULL ORDER BY c.name",
        {sqldb::Value(baseline_id), sqldb::Value(current_id)});
    while (rs.next()) {
      Delta d;
      d.bench = bench;
      d.metric = rs.get_string(1);
      d.current = rs.get_double(2);
      d.lower_better = lower_is_better(d.metric);
      d.gated = is_gated(gates, bench, d.metric);
      d.new_metric = true;
      report.deltas.push_back(std::move(d));
    }
  }
  return report;
}

std::string format_report(const Report& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-10s %-40s %12s %12s %9s  %s\n", "bench",
                "metric", "baseline", "current", "delta", "verdict");
  out += line;
  for (const Delta& d : report.deltas) {
    const char* verdict = "ok";
    if (d.missing_current) verdict = d.gated ? "MISSING (gated)" : "missing";
    else if (d.new_metric) verdict = "new";
    else if (d.regressed) verdict = "REGRESSED";
    else if (!d.gated) verdict = "ok (ungated)";
    char baseline[32] = "-";
    char current[32] = "-";
    char delta[32] = "-";
    if (!d.new_metric) std::snprintf(baseline, sizeof baseline, "%.4g", d.baseline);
    if (!d.missing_current) std::snprintf(current, sizeof current, "%.4g", d.current);
    if (!d.missing_current && !d.new_metric) {
      std::snprintf(delta, sizeof delta, "%+.1f%%", d.delta_pct);
    }
    std::snprintf(line, sizeof line, "%-10s %-40s %12s %12s %9s  %s\n",
                  d.bench.c_str(), d.metric.c_str(), baseline, current, delta,
                  verdict);
    out += line;
  }
  for (const std::string& bench : report.first_run_benches) {
    out += "first run for bench '" + bench +
           "': no stored baseline, nothing gated (record one with"
           " --record-baseline)\n";
  }
  char summary[128];
  std::snprintf(summary, sizeof summary,
                "perfguard: %d regression(s), %d missing gated metric(s),"
                " threshold %.1f%%\n",
                report.regressions, report.missing, report.threshold_pct);
  out += summary;
  return out;
}

}  // namespace perfdmf::perfguard
