// Write-ahead log and value (de)serialization for the persistence layer.
//
// The WAL is logical: each committed DML/DDL statement is appended with
// its bound parameters, and recovery re-executes them on top of the last
// snapshot. Every record carries a monotonic sequence number and a CRC32
// over its payload:
//
//   R <seq> <crc32-hex8> <payload-len>\n<payload>
//
// where <payload> holds length-prefixed statement frames
// "S <sql-len>\n<sql>\nP <count>\n" + encoded params, terminated by "E\n",
// so SQL text and string parameters may contain any bytes, including
// newlines. An autocommitted statement is one frame; a transaction commit
// is a batch record "B <count>\n" + frames + "E\n" — one record, one CRC,
// one sequence number, so a torn commit write is discarded wholly and a
// transaction is never half-replayed.
//
// Recovery distinguishes two failure shapes:
//  - torn tail: the final record is incomplete (header has no newline, or
//    the payload extends past EOF). That is the expected residue of a
//    crash mid-append; it is discarded silently.
//  - mid-log corruption: a record is fully present but fails its CRC,
//    sequence, or framing check. Replay stops there and reports the
//    offset plus how many structurally-whole records after it were
//    discarded — committed data was damaged, and the caller must know.
//
// Writes go through a POSIX fd so short writes are detected byte-exactly
// and fsync policy (SyncMode) is enforced. Failpoint sites: "wal.append"
// (single-statement records), "wal.commit" (commit batches), "wal.sync",
// "wal.group_sync" (the group-commit leader's fsync), "wal.reset".
//
// Group commit: appenders may defer the policy fsync (defer_sync = true)
// and later call wait_durable(seq). The first waiter becomes the leader,
// snapshots the written high-water mark, fsyncs ONCE outside the queue
// lock, then publishes the durable mark and wakes every follower whose
// sequence number it covered — N concurrent commits pay one fsync.
// A failed leader fsync is rethrown to the leader and to every follower
// queued behind that round; a later successful round supersedes it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sqldb/durability.h"
#include "sqldb/expr_eval.h"
#include "sqldb/value.h"

namespace perfdmf::sqldb {

/// Encode a value on one line: "N", "I <int>", "R <%.17g>", "T <len> <bytes>".
std::string encode_value(const Value& v);
/// Decode from `text` starting at `pos`; advances pos past the record.
Value decode_value(const std::string& text, std::size_t& pos);

class Wal {
 public:
  explicit Wal(std::filesystem::path path, SyncMode sync = SyncMode::kOnCommit);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Append one statement record; returns its sequence number. Synced
  /// only under SyncMode::kAlways (an autocommitted single statement);
  /// with defer_sync the caller takes over via wait_durable().
  std::uint64_t append(std::string_view sql, const Params& params,
                       bool defer_sync = false);

  /// Append a whole transaction as ONE batch record with a single write —
  /// the commit path, which makes batched bulk loads one write (and at
  /// most one fsync) instead of one per row, and makes the commit atomic
  /// on disk (see header comment). Returns the record's sequence number.
  /// Synced under kAlways/kOnCommit unless defer_sync hands the fsync to
  /// wait_durable().
  std::uint64_t append_batch(
      const std::vector<std::pair<std::string, Params>>& records,
      bool defer_sync = false);

  /// Block until record `seq` is fsynced, joining the group-commit queue
  /// (see header comment). No-op under SyncMode::kNone. Throws the
  /// leader's IoError to every commit the failed fsync covered.
  void wait_durable(std::uint64_t seq);

  /// Highest sequence number known durable (for tests and telemetry).
  std::uint64_t durable_seq() const {
    return durable_seq_.load(std::memory_order_acquire);
  }

  /// Highest sequence number appended so far (written, not necessarily
  /// durable). written_seq() >= durable_seq() always.
  std::uint64_t written_seq() const {
    return written_seq_.load(std::memory_order_acquire);
  }

  /// Commits currently inside wait_durable() (leader + followers) — the
  /// group-commit queue depth, readable lock-free for introspection.
  int commit_queue_depth() const {
    return commit_waiters_.load(std::memory_order_relaxed);
  }

  /// Duration of the most recent fsync in microseconds (0 before any).
  std::uint64_t last_fsync_micros() const {
    return last_fsync_micros_.load(std::memory_order_relaxed);
  }

  /// What replay() found. A clean log has corrupt == false; a torn tail
  /// alone is normal and reported only through tail_torn.
  struct ReplayInfo {
    std::size_t applied = 0;            // statements handed to apply()
    std::size_t skipped = 0;            // records at or below min_seq
    std::uint64_t last_seq = 0;         // highest sequence seen intact
    bool tail_torn = false;             // incomplete final record discarded
    bool corrupt = false;               // mid-log damage (see header comment)
    std::uint64_t corruption_offset = 0;
    std::size_t discarded = 0;          // whole records after the damage
    std::string error;                  // what the damage was
  };

  /// Replay every intact record in order, skipping records with
  /// seq <= min_seq (already folded into the snapshot being replayed
  /// onto). Never throws for file damage — the damage is described in
  /// the returned ReplayInfo; exceptions from apply() propagate.
  ReplayInfo replay(const std::function<void(const std::string& sql,
                                             const Params& params)>& apply,
                    std::uint64_t min_seq = 0) const;

  /// Truncate after a checkpoint — durably: the truncated file and its
  /// directory are fsynced, so a crash immediately afterwards cannot
  /// resurrect pre-checkpoint records on top of the new snapshot.
  /// Sequence numbering continues (it never restarts within a store).
  void reset();

  /// Highest sequence number assigned so far (0 before any append).
  std::uint64_t last_seq();

  /// Recovery learned the true high-water mark (snapshot watermark vs
  /// replayed tail); continue numbering from above it.
  void set_next_seq(std::uint64_t next);

  void set_sync_mode(SyncMode mode) { sync_ = mode; }
  SyncMode sync_mode() const { return sync_; }

  const std::filesystem::path& path() const { return path_; }

 private:
  std::string encode_record(std::uint64_t seq, std::string_view sql,
                            const Params& params) const;
  void ensure_open();
  /// Scan existing records to find the last assigned sequence number
  /// (standalone Wal use; Database sets it explicitly after replay).
  void recover_next_seq();
  void write_all(const std::string& buffer, const char* site);
  void sync_now();
  /// Monotonically raise the durable mark (inline-sync paths).
  void advance_durable(std::uint64_t seq);

  std::filesystem::path path_;
  int fd_ = -1;
  SyncMode sync_;
  std::uint64_t next_seq_ = 1;
  bool seq_known_ = false;

  // Group-commit state. written_seq_ advances after each successful
  // append (appends are serialized by the engine's writer mutex);
  // durable_seq_ advances under commit_mutex_ when a leader's fsync or
  // an inline sync lands.
  std::atomic<std::uint64_t> written_seq_{0};
  std::atomic<std::uint64_t> durable_seq_{0};
  std::atomic<int> commit_waiters_{0};
  std::atomic<std::uint64_t> last_fsync_micros_{0};
  std::mutex commit_mutex_;
  std::condition_variable commit_cv_;
  bool leader_active_ = false;
  std::uint64_t fail_round_ = 0;       // bumped when a leader fsync fails
  std::exception_ptr last_fail_;       // rethrown to that round's followers
  std::chrono::microseconds group_wait_{0};  // leader accumulation window
};

}  // namespace perfdmf::sqldb
