// Timers. WallTimer is the read-it-yourself stopwatch used by the
// benchmark harnesses; ScopedTimer is the instrumentation-site RAII
// variant that delivers its elapsed time to a sink on destruction, so
// call sites can't mix up units or forget to stop the clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace perfdmf::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic RAII timer: measures from construction to destruction and
/// calls `sink->record_micros(elapsed_microseconds)` exactly once. Any
/// type with that member works (telemetry::Histogram does); a null sink
/// makes the timer inert and skips both clock reads.
template <typename Sink>
class ScopedTimer {
 public:
  explicit ScopedTimer(Sink* sink) : sink_(sink) {
    if (sink_ != nullptr) start_ = Clock::now();
  }
  ~ScopedTimer() {
    if (sink_ == nullptr) return;
    const auto elapsed = Clock::now() - start_;
    sink_->record_micros(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  Sink* sink_;
  Clock::time_point start_{};
};

}  // namespace perfdmf::util
