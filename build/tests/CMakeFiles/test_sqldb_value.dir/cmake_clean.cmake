file(REMOVE_RECURSE
  "CMakeFiles/test_sqldb_value.dir/test_sqldb_value.cpp.o"
  "CMakeFiles/test_sqldb_value.dir/test_sqldb_value.cpp.o.d"
  "test_sqldb_value"
  "test_sqldb_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sqldb_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
