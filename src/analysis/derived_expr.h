// Expression-based derived metrics: compute a new metric from a formula
// over existing metric names, e.g.
//
//   derive_expression(trial, "MFLOPS", "PAPI_FP_OPS / TIME")
//   derive_expression(trial, "IPC", "PAPI_TOT_INS / PAPI_TOT_CYC")
//
// This is the programmable version of the paper's derived-metric support
// (§3.2: "derived metrics such as floating point operations per second"),
// reusing the SQL expression grammar: identifiers name metrics, the usual
// arithmetic / parentheses / numeric literals apply, and evaluation is
// pointwise over exclusive and inclusive values per (event, thread).
// Points where any referenced metric is missing are skipped; division by
// zero yields 0 for that point.
#pragma once

#include <string>

#include "profile/trial_data.h"

namespace perfdmf::analysis {

/// Returns the new metric's dense index. Throws ParseError on a bad
/// formula and InvalidArgument for unknown metric names or duplicates.
std::size_t derive_expression(profile::TrialData& trial, const std::string& name,
                              const std::string& formula);

}  // namespace perfdmf::analysis
