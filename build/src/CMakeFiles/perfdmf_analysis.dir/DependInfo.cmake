
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/algebra.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/algebra.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/algebra.cpp.o.d"
  "/root/repo/src/analysis/comparison.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/comparison.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/comparison.cpp.o.d"
  "/root/repo/src/analysis/correlation.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/correlation.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/correlation.cpp.o.d"
  "/root/repo/src/analysis/derived_expr.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/derived_expr.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/derived_expr.cpp.o.d"
  "/root/repo/src/analysis/hierarchical.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/hierarchical.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/hierarchical.cpp.o.d"
  "/root/repo/src/analysis/imbalance.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/imbalance.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/imbalance.cpp.o.d"
  "/root/repo/src/analysis/kmeans.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/kmeans.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/kmeans.cpp.o.d"
  "/root/repo/src/analysis/pca.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/pca.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/pca.cpp.o.d"
  "/root/repo/src/analysis/scalability.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/scalability.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/scalability.cpp.o.d"
  "/root/repo/src/analysis/speedup.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/speedup.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/speedup.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/CMakeFiles/perfdmf_analysis.dir/analysis/stats.cpp.o" "gcc" "src/CMakeFiles/perfdmf_analysis.dir/analysis/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/perfdmf_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_sqldb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
