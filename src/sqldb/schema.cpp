#include "sqldb/schema.h"

#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

void TableSchema::add_column(ColumnDef column) {
  if (find_column(column.name)) {
    throw DbError("duplicate column '" + column.name + "' in table " + name_);
  }
  if (column.primary_key) {
    if (primary_key_index()) {
      throw DbError("table " + name_ + " already has a primary key");
    }
    column.not_null = true;
  }
  columns_.push_back(std::move(column));
}

void TableSchema::drop_column(const std::string& name) {
  auto index = find_column(name);
  if (!index) throw DbError("no column '" + name + "' in table " + name_);
  if (columns_[*index].primary_key) {
    throw DbError("cannot drop primary key column '" + name + "'");
  }
  for (const auto& fk : foreign_keys_) {
    if (util::iequals(fk.column, name)) {
      throw DbError("cannot drop foreign key column '" + name + "'");
    }
  }
  columns_.erase(columns_.begin() + static_cast<std::ptrdiff_t>(*index));
}

std::optional<std::size_t> TableSchema::find_column(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (util::iequals(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::size_t TableSchema::column_index_or_throw(std::string_view name) const {
  auto index = find_column(name);
  if (!index) {
    throw DbError("no column '" + std::string(name) + "' in table " + name_);
  }
  return *index;
}

std::optional<std::size_t> TableSchema::primary_key_index() const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) return i;
  }
  return std::nullopt;
}

Value coerce_for_column(const ColumnDef& column, const Value& value,
                        const std::string& table_name) {
  if (value.is_null()) {
    if (column.not_null) {
      throw DbError("NULL in NOT NULL column " + table_name + "." + column.name);
    }
    return value;
  }
  switch (column.type) {
    case ValueType::kInt:
      if (value.type() == ValueType::kInt) return value;
      if (value.type() == ValueType::kReal) return Value(value.as_int());
      break;
    case ValueType::kReal:
      if (value.type() == ValueType::kReal) return value;
      if (value.type() == ValueType::kInt) return Value(value.as_real());
      break;
    case ValueType::kText:
      if (value.type() == ValueType::kText) return value;
      // Store numerics as text when the column is declared TEXT; PerfDMF's
      // flexible metadata columns receive mixed content this way.
      return Value(value.to_string());
    case ValueType::kNull:
      return value;  // untyped column: store as given
  }
  throw DbError("type mismatch for " + table_name + "." + column.name + ": got " +
                value_type_name(value.type()) + ", column is " +
                value_type_name(column.type));
}

}  // namespace perfdmf::sqldb
