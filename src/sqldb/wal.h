// Write-ahead log and value (de)serialization for the persistence layer.
//
// The WAL is logical: each committed DML/DDL statement is appended with
// its bound parameters, and recovery re-executes them on top of the last
// snapshot. Record framing is length-prefixed so SQL text and string
// parameters may contain any bytes, including newlines. A torn tail
// (crash mid-append) is detected and discarded.
#pragma once

#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "sqldb/expr_eval.h"
#include "sqldb/value.h"

namespace perfdmf::sqldb {

/// Encode a value on one line: "N", "I <int>", "R <%.17g>", "T <len> <bytes>".
std::string encode_value(const Value& v);
/// Decode from `text` starting at `pos`; advances pos past the record.
Value decode_value(const std::string& text, std::size_t& pos);

class Wal {
 public:
  explicit Wal(std::filesystem::path path);

  /// Append one statement record (flushes to the OS).
  void append(std::string_view sql, const Params& params);

  /// Append many records with a single write + flush — the commit path
  /// for transactions, which makes batched bulk loads one flush instead
  /// of one per row.
  void append_batch(const std::vector<std::pair<std::string, Params>>& records);

  /// Replay every intact record in order. Torn tails are ignored.
  void replay(const std::function<void(const std::string& sql,
                                       const Params& params)>& apply) const;

  /// Truncate after a checkpoint.
  void reset();

  const std::filesystem::path& path() const { return path_; }

 private:
  std::string encode_record(std::string_view sql, const Params& params) const;
  std::ofstream& stream();

  std::filesystem::path path_;
  std::ofstream out_;  // kept open across appends; reopened after reset()
};

}  // namespace perfdmf::sqldb
