file(REMOVE_RECURSE
  "CMakeFiles/bench_sqldb.dir/bench_sqldb.cpp.o"
  "CMakeFiles/bench_sqldb.dir/bench_sqldb.cpp.o.d"
  "bench_sqldb"
  "bench_sqldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sqldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
