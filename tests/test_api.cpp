// Tests for the PerfDMF API layer: schema bootstrap, application /
// experiment / trial management, flexible schema, bulk upload/load,
// selective queries, derived metrics, analysis results.
#include <gtest/gtest.h>

#include "api/database_api.h"
#include "api/schema_bootstrap.h"
#include "io/synth.h"
#include "profile/derived.h"
#include "util/error.h"
#include "util/file.h"

using namespace perfdmf;
using namespace perfdmf::api;

namespace {

class ApiTest : public ::testing::Test {
 protected:
  ApiTest()
      : connection(std::make_shared<sqldb::Connection>()), api(connection) {}

  std::int64_t make_app_and_experiment() {
    profile::Application app;
    app.name = "sppm";
    api.save_application(app);
    profile::Experiment experiment;
    experiment.application_id = app.id;
    experiment.name = "frost runs";
    api.save_experiment(experiment);
    return experiment.id;
  }

  std::shared_ptr<sqldb::Connection> connection;
  DatabaseAPI api;
};

TEST_F(ApiTest, BootstrapCreatesAllTables) {
  EXPECT_TRUE(schema_present(*connection));
  auto tables = connection->get_meta_data().get_tables();
  // 11 schema tables + 6 virtual system tables.
  EXPECT_EQ(tables.size(), 17u);
  // Idempotent.
  EXPECT_NO_THROW(bootstrap_schema(*connection));
}

TEST_F(ApiTest, SaveAndListApplications) {
  profile::Application app;
  app.name = "miranda";
  app.fields["version"] = "1.0";
  app.fields["description"] = "hydro";
  api.save_application(app);
  EXPECT_GT(app.id, 0);

  auto apps = api.list_applications();
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].name, "miranda");
  EXPECT_EQ(apps[0].fields.at("version"), "1.0");
  EXPECT_EQ(apps[0].fields.at("description"), "hydro");
}

TEST_F(ApiTest, UpdateExistingApplication) {
  profile::Application app;
  app.name = "x";
  api.save_application(app);
  const std::int64_t id = app.id;
  app.name = "y";
  app.fields["version"] = "2";
  api.save_application(app);
  EXPECT_EQ(app.id, id);
  auto loaded = api.get_application(id);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, "y");
  EXPECT_EQ(loaded->fields.at("version"), "2");
}

TEST_F(ApiTest, FindApplicationByName) {
  profile::Application app;
  app.name = "target";
  api.save_application(app);
  EXPECT_TRUE(api.find_application("target").has_value());
  EXPECT_FALSE(api.find_application("absent").has_value());
  EXPECT_FALSE(api.get_application(9999).has_value());
}

TEST_F(ApiTest, FlexibleSchemaUnknownFieldIgnoredWithoutExtend) {
  profile::Application app;
  app.name = "a";
  app.fields["funding_agency"] = "DOE";  // no such column
  api.save_application(app, /*extend_schema=*/false);
  auto loaded = api.get_application(app.id);
  EXPECT_EQ(loaded->fields.count("funding_agency"), 0u);
}

TEST_F(ApiTest, FlexibleSchemaExtendAddsColumn) {
  profile::Application app;
  app.name = "a";
  app.fields["funding_agency"] = "DOE";
  api.save_application(app, /*extend_schema=*/true);
  auto loaded = api.get_application(app.id);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->fields.at("funding_agency"), "DOE");
  // The column now exists for everyone (getMetaData discovery).
  auto columns = connection->get_meta_data().get_columns("application");
  bool found = false;
  for (const auto& c : columns) {
    if (c.name == "funding_agency") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ApiTest, FlexibleSchemaDroppedColumnDisappearsFromModel) {
  profile::Application app;
  app.name = "a";
  app.fields["version"] = "1";
  api.save_application(app);
  connection->execute_update("ALTER TABLE application DROP COLUMN version");
  auto loaded = api.get_application(app.id);
  EXPECT_EQ(loaded->fields.count("version"), 0u);
  // Saving again with the stale field must not fail (field is skipped).
  EXPECT_NO_THROW(api.save_application(*loaded));
}

TEST_F(ApiTest, ExperimentRequiresApplication) {
  profile::Experiment experiment;
  experiment.name = "e";
  EXPECT_THROW(api.save_experiment(experiment), InvalidArgument);
  experiment.application_id = 12345;  // dangling
  EXPECT_THROW(api.save_experiment(experiment), DbError);  // FK violation
}

TEST_F(ApiTest, ExperimentAndTrialHierarchy) {
  const std::int64_t experiment_id = make_app_and_experiment();
  profile::Trial trial;
  trial.experiment_id = experiment_id;
  trial.name = "64p";
  trial.node_count = 64;
  trial.contexts_per_node = 1;
  trial.threads_per_context = 1;
  trial.fields["problem_definition"] = "shock tube";
  api.save_trial(trial);

  auto trials = api.list_trials(experiment_id);
  ASSERT_EQ(trials.size(), 1u);
  EXPECT_EQ(trials[0].node_count, 64);
  EXPECT_EQ(trials[0].fields.at("problem_definition"), "shock tube");
}

TEST_F(ApiTest, UploadTrialStoresEverything) {
  const std::int64_t experiment_id = make_app_and_experiment();
  io::synth::TrialSpec spec;
  spec.nodes = 3;
  spec.event_count = 5;
  spec.extra_metrics = {"PAPI_FP_OPS"};
  spec.atomic_event_count = 1;
  auto data = io::synth::generate_trial(spec);
  const std::int64_t trial_id = api.upload_trial(data, experiment_id);
  EXPECT_GT(trial_id, 0);

  EXPECT_EQ(api.get_metrics(trial_id).size(), 2u);
  EXPECT_EQ(api.get_interval_events(trial_id).size(), 5u);
  EXPECT_EQ(api.get_atomic_events(trial_id).size(), 1u);
  EXPECT_EQ(api.get_interval_data(trial_id).size(), 5u * 3u * 2u);
  EXPECT_EQ(api.get_atomic_data(trial_id).size(), 3u);

  // Summary tables populated: 5 events x 2 metrics rows each.
  auto rs = connection->execute(
      "SELECT COUNT(*) FROM interval_total_summary");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 10);
  auto rs2 = connection->execute("SELECT COUNT(*) FROM interval_mean_summary");
  rs2.next();
  EXPECT_EQ(rs2.get_int(1), 10);
}

TEST_F(ApiTest, UploadThenLoadRoundTrips) {
  const std::int64_t experiment_id = make_app_and_experiment();
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 4;
  spec.atomic_event_count = 2;
  auto original = io::synth::generate_trial(spec);
  const std::int64_t trial_id = api.upload_trial(original, experiment_id);

  auto loaded = api.load_trial(trial_id);
  EXPECT_EQ(loaded.trial().id, trial_id);
  EXPECT_EQ(loaded.events().size(), original.events().size());
  EXPECT_EQ(loaded.threads().size(), original.threads().size());
  EXPECT_EQ(loaded.interval_point_count(), original.interval_point_count());
  EXPECT_EQ(loaded.atomic_point_count(), original.atomic_point_count());

  original.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                                 const profile::IntervalDataPoint& p) {
    const auto le = loaded.find_event(original.events()[e].name);
    const auto lm = loaded.find_metric(original.metrics()[m].name);
    const auto lt = loaded.find_thread(original.threads()[t]);
    ASSERT_TRUE(le && lm && lt);
    const auto* q = loaded.interval_data(*le, *lt, *lm);
    ASSERT_NE(q, nullptr);
    EXPECT_DOUBLE_EQ(q->inclusive, p.inclusive);
    EXPECT_DOUBLE_EQ(q->exclusive, p.exclusive);
    EXPECT_DOUBLE_EQ(q->num_calls, p.num_calls);
  });
}

TEST_F(ApiTest, LoadMissingTrialThrows) {
  EXPECT_THROW(api.load_trial(777), DbError);
}

TEST_F(ApiTest, SelectiveQueriesWithFilters) {
  const std::int64_t experiment_id = make_app_and_experiment();
  io::synth::TrialSpec spec;
  spec.nodes = 4;
  spec.event_count = 3;
  auto data = io::synth::generate_trial(spec);
  const std::int64_t trial_id = api.upload_trial(data, experiment_id);

  DatabaseAPI::DataFilter filter;
  filter.node = 2;
  auto rows = api.get_interval_data(trial_id, filter);
  EXPECT_EQ(rows.size(), 3u);  // 3 events x 1 thread x 1 metric
  for (const auto& row : rows) EXPECT_EQ(row.thread.node, 2);

  auto events = api.get_interval_events(trial_id);
  filter.event_id = events[1].id;
  rows = api.get_interval_data(trial_id, filter);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].event_name, events[1].name);

  auto metrics = api.get_metrics(trial_id);
  DatabaseAPI::DataFilter metric_filter;
  metric_filter.metric_id = metrics[0].id;
  EXPECT_EQ(api.get_interval_data(trial_id, metric_filter).size(), 12u);
}

TEST_F(ApiTest, AggregateColumnMatchesManualComputation) {
  const std::int64_t experiment_id = make_app_and_experiment();
  io::synth::TrialSpec spec;
  spec.nodes = 8;
  spec.event_count = 2;
  auto data = io::synth::generate_trial(spec);
  const std::int64_t trial_id = api.upload_trial(data, experiment_id);
  auto events = api.get_interval_events(trial_id);

  auto summary =
      api.aggregate_interval_column(trial_id, events[0].id, "exclusive");
  EXPECT_EQ(summary.count, 8u);
  // Manual check against raw rows.
  DatabaseAPI::DataFilter filter;
  filter.event_id = events[0].id;
  auto rows = api.get_interval_data(trial_id, filter);
  double manual_min = rows[0].data.exclusive;
  double manual_max = rows[0].data.exclusive;
  double sum = 0.0;
  for (const auto& row : rows) {
    manual_min = std::min(manual_min, row.data.exclusive);
    manual_max = std::max(manual_max, row.data.exclusive);
    sum += row.data.exclusive;
  }
  EXPECT_DOUBLE_EQ(summary.minimum, manual_min);
  EXPECT_DOUBLE_EQ(summary.maximum, manual_max);
  EXPECT_NEAR(summary.mean, sum / 8.0, 1e-9);
  EXPECT_GT(summary.std_dev, 0.0);
}

TEST_F(ApiTest, AggregateRejectsArbitraryColumn) {
  EXPECT_THROW(api.aggregate_interval_column(1, 1, "name; DROP TABLE trial"),
               InvalidArgument);
}

TEST_F(ApiTest, SaveDerivedMetricAppendsToTrial) {
  const std::int64_t experiment_id = make_app_and_experiment();
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 3;
  spec.extra_metrics = {"PAPI_FP_OPS"};
  auto data = io::synth::generate_trial(spec);
  const std::int64_t trial_id = api.upload_trial(data, experiment_id);

  profile::derive_ratio(data, "MFLOPS", "PAPI_FP_OPS", "TIME");
  const std::int64_t metric_id =
      api.save_derived_metric(trial_id, data, "MFLOPS");
  EXPECT_GT(metric_id, 0);

  auto metrics = api.get_metrics(trial_id);
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[2].name, "MFLOPS");
  EXPECT_TRUE(metrics[2].derived);

  DatabaseAPI::DataFilter filter;
  filter.metric_id = metric_id;
  EXPECT_EQ(api.get_interval_data(trial_id, filter).size(), 6u);

  // Reloading the full trial carries the derived metric.
  auto reloaded = api.load_trial(trial_id);
  EXPECT_TRUE(reloaded.find_metric("MFLOPS").has_value());
}

TEST_F(ApiTest, SaveDerivedMetricUnknownNameThrows) {
  const std::int64_t experiment_id = make_app_and_experiment();
  io::synth::TrialSpec spec;
  auto data = io::synth::generate_trial(spec);
  const std::int64_t trial_id = api.upload_trial(data, experiment_id);
  EXPECT_THROW(api.save_derived_metric(trial_id, data, "ABSENT"),
               InvalidArgument);
}

TEST_F(ApiTest, DeleteTrialRemovesEverything) {
  const std::int64_t experiment_id = make_app_and_experiment();
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 3;
  spec.atomic_event_count = 1;
  auto data = io::synth::generate_trial(spec);
  const std::int64_t trial_id = api.upload_trial(data, experiment_id);
  api.save_analysis_result(trial_id, "clusters", "kmeans", "{}");

  api.delete_trial(trial_id);
  EXPECT_FALSE(api.get_trial(trial_id).has_value());
  for (const char* table :
       {"metric", "interval_event", "interval_location_profile",
        "interval_total_summary", "interval_mean_summary", "atomic_event",
        "atomic_location_profile", "analysis_result"}) {
    auto rs = connection->execute(std::string("SELECT COUNT(*) FROM ") + table);
    rs.next();
    EXPECT_EQ(rs.get_int(1), 0) << table;
  }
}

TEST_F(ApiTest, AnalysisResultsRoundTrip) {
  const std::int64_t experiment_id = make_app_and_experiment();
  io::synth::TrialSpec spec;
  auto data = io::synth::generate_trial(spec);
  const std::int64_t trial_id = api.upload_trial(data, experiment_id);

  api.save_analysis_result(trial_id, "cluster run 1", "kmeans",
                           "k=3 inertia=12.5");
  api.save_analysis_result(trial_id, "correlation", "pearson", "matrix...");
  auto results = api.list_analysis_results(trial_id);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "cluster run 1");
  EXPECT_EQ(results[1].kind, "pearson");
}

TEST_F(ApiTest, PersistentArchiveSurvivesReopen) {
  util::ScopedTempDir dir;
  const auto db_dir = dir.path() / "archive";
  std::int64_t trial_id = 0;
  std::size_t expected_points = 0;
  {
    auto conn = std::make_shared<sqldb::Connection>(db_dir);
    DatabaseAPI file_api(conn);
    profile::Application app;
    app.name = "persisted";
    file_api.save_application(app);
    profile::Experiment experiment;
    experiment.application_id = app.id;
    experiment.name = "e";
    file_api.save_experiment(experiment);
    io::synth::TrialSpec spec;
    spec.nodes = 2;
    spec.event_count = 4;
    auto data = io::synth::generate_trial(spec);
    expected_points = data.interval_point_count();
    trial_id = file_api.upload_trial(data, experiment.id);
  }
  {
    auto conn = std::make_shared<sqldb::Connection>(db_dir);
    DatabaseAPI file_api(conn);
    auto apps = file_api.list_applications();
    ASSERT_EQ(apps.size(), 1u);
    EXPECT_EQ(apps[0].name, "persisted");
    auto loaded = file_api.load_trial(trial_id);
    EXPECT_EQ(loaded.interval_point_count(), expected_points);
  }
}

}  // namespace

namespace {

TEST(ApiPersistence, FlexibleSchemaColumnsSurviveReopen) {
  util::ScopedTempDir dir;
  const auto db_dir = dir.path() / "archive";
  {
    auto conn = std::make_shared<sqldb::Connection>(db_dir);
    DatabaseAPI api(conn);
    profile::Application app;
    app.name = "app";
    app.fields["funding_agency"] = "DOE";
    api.save_application(app, /*extend_schema=*/true);
  }
  {
    auto conn = std::make_shared<sqldb::Connection>(db_dir);
    DatabaseAPI api(conn);
    auto apps = api.list_applications();
    ASSERT_EQ(apps.size(), 1u);
    EXPECT_EQ(apps[0].fields.at("funding_agency"), "DOE");
    // The reopened schema still accepts the extended column on save.
    apps[0].fields["funding_agency"] = "NSF";
    EXPECT_NO_THROW(api.save_application(apps[0]));
    EXPECT_EQ(api.get_application(apps[0].id)->fields.at("funding_agency"),
              "NSF");
  }
}

}  // namespace

namespace {

TEST(ApiUpload, ExtendSchemaStoresTrialMetadataFields) {
  auto connection = std::make_shared<sqldb::Connection>();
  DatabaseAPI api(connection);
  profile::Application app;
  app.name = "a";
  api.save_application(app);
  profile::Experiment experiment;
  experiment.application_id = app.id;
  experiment.name = "e";
  api.save_experiment(experiment);

  io::synth::TrialSpec spec;
  auto data = io::synth::generate_trial(spec);
  data.trial().fields["OS"] = "Linux";
  data.trial().fields["Hostname"] = "bgl0042";

  // Without extension the fields are dropped...
  const std::int64_t plain = api.upload_trial(data, experiment.id);
  EXPECT_EQ(api.get_trial(plain)->fields.count("OS"), 0u);
  // ...with extension they become flexible-schema columns.
  const std::int64_t extended =
      api.upload_trial(data, experiment.id, /*extend_schema=*/true);
  auto stored = api.get_trial(extended);
  EXPECT_EQ(stored->fields.at("OS"), "Linux");
  EXPECT_EQ(stored->fields.at("Hostname"), "bgl0042");
}

}  // namespace
