# Empty compiler generated dependencies file for test_sqldb_value.
# This may be replaced when dependencies are built.
