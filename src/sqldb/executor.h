// Statement execution against a Database catalog.
//
// SELECT pipeline: FROM/JOIN (hash join on equi-join conjuncts, with
// index-nested-loop and nested-loop fallbacks) -> WHERE (index-accelerated
// candidate selection on the base table) -> GROUP BY / aggregates (open-
// addressing hash of group keys with inline accumulators) -> HAVING ->
// projection -> DISTINCT -> ORDER BY (bounded Top-K heap when a LIMIT is
// present, full sort otherwise) -> LIMIT/OFFSET. Results are materialized;
// the profile workloads PerfDMF runs are read-mostly and bounded by row
// construction, not pipelining.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/expr_eval.h"
#include "sqldb/table.h"

namespace perfdmf::sqldb {

class Database;

struct ResultSetData {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
};

/// Runtime switches for the executor's optimized paths. Tests and benches
/// disable them to force the fallback strategies (nested-loop join,
/// ordered-map grouping, full sort) and compare results / timings; normal
/// operation leaves everything on. Not synchronized: toggle only while no
/// query is in flight.
struct ExecutorTuning {
  bool hash_join = true;
  bool hash_group_by = true;
  bool top_k = true;
};

/// Per-operator runtime stats collected under EXPLAIN ANALYZE. Operators
/// form a chain in pipeline order (from -> join* -> filter ->
/// group-by|project -> order-by -> limit); each operator's rows_in is by
/// construction the preceding operator's rows_out, and the operator
/// timing intervals are disjoint, so their micros sum to at most the
/// statement's total.
struct OperatorStats {
  std::string label;            // "from t", "join b", "group-by", ...
  std::uint64_t rows_in = 0;
  std::uint64_t rows_out = 0;
  std::uint64_t micros = 0;
  std::uint64_t entries = 0;    // hash-table entries (join build, group-by)
  std::uint64_t mem_bytes = 0;  // bytes charged against the memory budget
  bool degraded = false;        // operator fell back under memory pressure
};

/// Plan description collected while executing under EXPLAIN: one line per
/// decision (base-table access path, join strategy per join, grouping
/// strategy, ORDER BY strategy). The Connection layer appends a
/// plan-cache line for EXPLAIN statements it serves. With `analyze` set
/// (EXPLAIN ANALYZE) the executor additionally fills `ops` with runtime
/// operator stats.
struct ExplainInfo {
  bool analyze = false;
  std::vector<std::string> lines;
  std::vector<OperatorStats> ops;
  void add(std::string line) { lines.push_back(std::move(line)); }
};

/// Execute a SELECT. `params` supplies '?' bindings. The statement is
/// mutated in place (column binding, temporary aggregate rewriting) but
/// is restored to a reusable state, so prepared statements can re-execute
/// it with different parameters. When `explain` is non-null the chosen
/// strategies are recorded into it.
ResultSetData execute_select(Database& db, SelectStatement& stmt,
                             const Params& params,
                             ExplainInfo* explain = nullptr);

/// EXPLAIN SELECT: run the select (so group/strategy decisions reflect the
/// actual data) and return the plan lines as a one-column result. With
/// `analyze` (EXPLAIN ANALYZE) each operator's runtime stats are appended
/// as additional "analyze <op>: ..." lines and recorded into the active
/// telemetry span so the slow-query ring gains operator-level detail.
ResultSetData execute_explain(Database& db, SelectStatement& stmt,
                              const Params& params, bool analyze = false);

/// Candidate RowIds for a WHERE clause over a single table, using an
/// index when the (already bound) predicate pins an indexed column with
/// '=', '<', '<=', '>', '>=' or BETWEEN against a literal/placeholder.
/// Unique-index equality is preferred over non-unique equality, which is
/// preferred over ranges; strict bounds are served exclusively. The
/// caller must still evaluate the full predicate per candidate, and
/// resolve each id against `view` (index hits may be stale).
std::vector<RowId> collect_candidates(const Table& table, const Expr* bound_where,
                                      const Params& params, const ReadView& view);

}  // namespace perfdmf::sqldb
