#include "util/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

namespace perfdmf::util {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("PERFDMF_LOG_LEVEL");
  if (env != nullptr) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lowered;
  lowered.reserve(name.size());
  for (const char c : name) {
    lowered += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off" || lowered == "none") return LogLevel::kOff;
  return std::nullopt;
}

std::string iso8601_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  return buf;
}

std::string current_thread_id() {
  thread_local std::string cached = [] {
    std::ostringstream os;
    os << std::this_thread::get_id();
    return os.str();
  }();
  return cached;
}

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::string line = iso8601_now();
  line += " [perfdmf ";
  line += level_name(level);
  line += " tid:";
  line += current_thread_id();
  line += "] ";
  line += message;
  line += '\n';
  // One fwrite call keeps concurrent lines from interleaving mid-line.
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace perfdmf::util
