
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_io_synth.cpp" "tests/CMakeFiles/test_io_synth.dir/test_io_synth.cpp.o" "gcc" "tests/CMakeFiles/test_io_synth.dir/test_io_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/perfdmf_explorer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_sqldb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
