# Empty dependencies file for paraprof_text.
# This may be replaced when dependencies are built.
