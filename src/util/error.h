// Exception hierarchy for PerfDMF-C++.
//
// All framework errors derive from perfdmf::Error so callers can catch one
// base type at an API boundary. Subclasses mark which subsystem failed.
#pragma once

#include <stdexcept>
#include <string>

namespace perfdmf {

/// Base class for every error thrown by the framework.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed input file or string (profile formats, XML, SQL text).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Database engine failures: constraint violations, unknown tables, etc.
///
/// The governance layer (statement deadlines, admission control, degraded
/// read-only mode) tags its errors with a Kind so callers can distinguish
/// "retry later" (kOverloaded), "the statement was killed" (kTimeout /
/// kCancelled), "writes are unavailable" (kReadOnly), and "the statement
/// blew its memory cap" (kMemBudget) from plain semantic errors without
/// parsing message text.
class DbError : public Error {
 public:
  enum class Kind {
    kGeneric,
    kTimeout,     // statement deadline expired
    kCancelled,   // Connection::cancel() observed
    kOverloaded,  // admission control shed the statement
    kReadOnly,    // database is in degraded read-only mode
    kMemBudget,   // per-statement memory hard cap exceeded
  };

  explicit DbError(const std::string& what, Kind kind = Kind::kGeneric)
      : Error("db error: " + what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Filesystem / OS-level failures. Carries the originating errno when one
/// is known (0 otherwise) so policy layers can special-case transient
/// conditions — the degraded-mode machinery keys on ENOSPC.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what, int sys_errno = 0)
      : Error("io error: " + what), sys_errno_(sys_errno) {}

  int sys_errno() const { return sys_errno_; }

 private:
  int sys_errno_;
};

/// A caller violated an API precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error("invalid argument: " + what) {}
};

}  // namespace perfdmf
