// E4 — PerfExplorer cluster analysis (paper §5.3, sPPM / Ahn & Vetter).
//
// Claim reproduced: statistical cluster analysis of large parallel
// profiles (up to 1024 threads, up to 7 PAPI counters) recovers the
// behavioural structure; results are summarized per cluster and saved
// back to the archive. The shape to reproduce: planted clusters are
// recovered (ARI ~ 1) at every scale and the analysis cost stays
// practical as threads grow.
#include <cstdio>

#include "analysis/hierarchical.h"
#include "analysis/kmeans.h"
#include "analysis/pca.h"
#include "api/database_session.h"
#include "bench_json.h"
#include "io/synth.h"
#include "util/timer.h"

using namespace perfdmf;

int main() {
  bench::BenchJson json("cluster");
  std::printf("E4: sPPM-style cluster analysis (7 metrics, 24 events, k=3)\n");
  std::printf("%8s %10s %10s %10s %10s %10s %8s %10s %8s\n", "threads",
              "points", "store(s)", "feat(ms)", "kmeans(ms)", "pca(ms)", "ARI",
              "hier(ms)", "hARI");

  for (std::int32_t threads : {64, 256, 1024}) {
    io::synth::ClusterSpec spec;
    spec.threads = threads;
    spec.cluster_count = 3;
    auto planted = io::synth::generate_clustered_trial(spec);

    api::DatabaseSession session;
    util::WallTimer timer;
    const std::int64_t trial_id =
        session.save_trial(planted.trial, "sppm", "frost");
    const double store_seconds = timer.seconds();

    auto loaded = session.load_selected_trial();
    timer.reset();
    auto features = analysis::thread_features(loaded);
    const double feature_ms = timer.millis();

    analysis::KMeansOptions options;
    options.k = 3;
    options.restarts = 3;
    timer.reset();
    auto clusters = analysis::kmeans(features.values, features.rows,
                                     features.cols, options);
    const double kmeans_ms = timer.millis();

    timer.reset();
    auto reduced =
        analysis::pca(features.values, features.rows, features.cols, 2);
    const double pca_ms = timer.millis();

    const double ari = analysis::adjusted_rand_index(clusters.assignment,
                                                     planted.ground_truth);

    // Hierarchical clustering is O(n^2) memory; cap it at 512 threads.
    double hierarchical_ms = 0.0;
    double hierarchical_ari = 0.0;
    if (threads <= 512) {
      timer.reset();
      auto tree = analysis::hierarchical_cluster(features.values, features.rows,
                                                 features.cols);
      auto assignment = tree.cut(3);
      hierarchical_ms = timer.millis();
      hierarchical_ari =
          analysis::adjusted_rand_index(assignment, planted.ground_truth);
    }
    if (threads <= 512) {
      std::printf("%8d %10zu %10.2f %10.2f %10.2f %10.2f %8.3f %10.2f %8.3f\n",
                  threads, planted.trial.interval_point_count(), store_seconds,
                  feature_ms, kmeans_ms, pca_ms, ari, hierarchical_ms,
                  hierarchical_ari);
    } else {
      std::printf("%8d %10zu %10.2f %10.2f %10.2f %10.2f %8.3f %10s %8s\n",
                  threads, planted.trial.interval_point_count(), store_seconds,
                  feature_ms, kmeans_ms, pca_ms, ari, "-", "-");
    }

    std::string content = "ari=" + std::to_string(ari);
    session.api().save_analysis_result(trial_id, "kmeans", "clustering",
                                       content);
    (void)reduced;

    const std::string prefix = "t" + std::to_string(threads) + "_";
    json.set(prefix + "store_s", store_seconds);
    json.set(prefix + "kmeans_ms", kmeans_ms);
    json.set(prefix + "pca_ms", pca_ms);
    json.set(prefix + "kmeans_ari", ari);
  }
  std::printf("\npaper claim: cluster analysis on up to 1024 threads x 7 PAPI"
              " counters; Ahn & Vetter results reproduced (ARI ~ 1)\n");
  json.write();
  return 0;
}
