// The workload-generation and perf-gate satellites of the bench
// subsystem:
//   - util::Zipfian draws the YCSB-shaped skew it claims (log-log
//     frequency-rank slope ≈ -theta) and is deterministic under a seed;
//   - util::seed_from_env implements the PERFDMF_SEED replay contract;
//   - bench_json output (escaping, schema_version, non-finite -> null)
//     parses back through perfguard's reader;
//   - perfguard's regression math over the sqldb-hosted PERF_RUNS /
//     PERF_METRICS store: pass, fail, direction, missing-metric,
//     new-metric, zero-baseline, and first-run cases — including the
//     injected->N% regression the check.sh gate must catch.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "../bench/bench_json.h"
#include "perfguard/perfguard.h"
#include "util/error.h"
#include "util/file.h"
#include "util/json.h"
#include "util/rng.h"

using namespace perfdmf;
namespace pg = perfdmf::perfguard;

// ------------------------------------------------------------- zipfian

TEST(Zipfian, FrequencyRankSlopeMatchesTheta) {
  constexpr std::uint64_t kN = 500;
  constexpr double kTheta = 0.8;
  constexpr int kDraws = 300000;

  util::Rng rng(12345);
  util::Zipfian zipf(kN, kTheta);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t rank = zipf.next(rng);
    ASSERT_LT(rank, kN);
    ++counts[rank];
  }

  // Ranks must already be sorted by popularity (rank 0 hottest)...
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[100]);

  // ...and the log-log frequency-rank line over the well-sampled head
  // must have slope ≈ -theta (least squares over ranks 1..30).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::uint64_t r = 0; r < 30; ++r) {
    ASSERT_GT(counts[r], 0) << "rank " << r << " never drawn";
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(counts[r]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  EXPECT_NEAR(slope, -kTheta, 0.12)
      << "zipfian frequency-rank slope off: " << slope;
}

TEST(Zipfian, DeterministicUnderFixedSeed) {
  util::Zipfian zipf(10000, 0.99);
  util::Rng a(777);
  util::Rng b(777);
  util::Rng c(778);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t va = zipf.next(a);
    ASSERT_EQ(va, zipf.next(b)) << "same seed diverged at draw " << i;
    if (va != zipf.next(c)) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical streams";
}

TEST(Zipfian, ScatterStaysInRangeAndIsInjectiveEnough) {
  constexpr std::uint64_t kN = 5000;
  util::Zipfian zipf(kN, 0.99);
  std::map<std::uint64_t, int> seen;
  for (std::uint64_t r = 0; r < 1000; ++r) {
    const std::uint64_t key = zipf.scatter(r);
    EXPECT_LT(key, kN);
    ++seen[key];
  }
  // Scattering 1000 ranks into 5000 slots loses ~10% to birthday
  // collisions (5000·(1−e^{−0.2}) ≈ 906 distinct expected); well above
  // 800 means the hot set is genuinely spread, not clumped.
  EXPECT_GT(seen.size(), 800u);
}

// ------------------------------------------------------ seed plumbing

TEST(SeedFromEnv, OverridesAndFallsBack) {
  ::unsetenv("PERFDMF_SEED");
  EXPECT_EQ(util::seed_from_env(42), 42u);

  ::setenv("PERFDMF_SEED", "123", 1);
  EXPECT_EQ(util::seed_from_env(42), 123u);

  ::setenv("PERFDMF_SEED", "0x2a", 1);
  EXPECT_EQ(util::seed_from_env(7), 42u);

  ::setenv("PERFDMF_SEED", "not-a-seed", 1);
  EXPECT_EQ(util::seed_from_env(42), 42u);

  ::setenv("PERFDMF_SEED", "", 1);
  EXPECT_EQ(util::seed_from_env(42), 42u);

  ::unsetenv("PERFDMF_SEED");
}

// ------------------------------------------------- BENCH json parsing

TEST(BenchJsonParse, ReadsFieldsAndSkipsNullMetrics) {
  const pg::BenchRun run = pg::parse_bench_json(
      R"({"bench":"workload","schema_version":2,"git_sha":"abc\"123",)"
      R"("timestamp":"2026-08-09T00:00:00Z",)"
      R"("metrics":{"a_ms":12.5,"weird \\ name":3,"broken_ratio":null}})");
  EXPECT_EQ(run.bench, "workload");
  EXPECT_EQ(run.schema_version, 2);
  EXPECT_EQ(run.git_sha, "abc\"123");
  ASSERT_EQ(run.metrics.size(), 2u);
  EXPECT_EQ(run.metrics[0].first, "a_ms");
  EXPECT_DOUBLE_EQ(run.metrics[0].second, 12.5);
  EXPECT_EQ(run.metrics[1].first, "weird \\ name");
}

TEST(BenchJsonParse, RejectsMalformedAndFutureSchema) {
  EXPECT_THROW(pg::parse_bench_json("{"), ParseError);
  EXPECT_THROW(pg::parse_bench_json("[1,2]"), ParseError);
  EXPECT_THROW(pg::parse_bench_json(R"({"metrics":{}})"), ParseError);
  EXPECT_THROW(pg::parse_bench_json(R"({"bench":"x"})"), ParseError);
  EXPECT_THROW(
      pg::parse_bench_json(
          R"({"bench":"x","schema_version":99,"metrics":{}})"),
      ParseError);
}

TEST(BenchJsonParse, EmittedFileRoundTripsThroughBenchJson) {
  // End to end through the writer: special characters in the metric
  // name must be escaped, non-finite values must become null (and then
  // be dropped by the reader), and schema_version must be present.
  bench::BenchJson json("workload_test_roundtrip");
  json.set("plain_ms", 1.5);
  json.set("quote\"backslash\\name", 2.0);
  json.set("inf_speedup", std::numeric_limits<double>::infinity());
  json.write();

  const std::filesystem::path path = "BENCH_workload_test_roundtrip.json";
  const pg::BenchRun run = pg::load_bench_file(path);
  std::filesystem::remove(path);

  EXPECT_EQ(run.bench, "workload_test_roundtrip");
  EXPECT_EQ(run.schema_version, bench::kBenchJsonSchemaVersion);
  ASSERT_EQ(run.metrics.size(), 2u) << "null metric should be dropped";
  EXPECT_EQ(run.metrics[0].first, "plain_ms");
  EXPECT_EQ(run.metrics[1].first, "quote\"backslash\\name");
}

TEST(Json, ParsesEscapesArraysAndNumbers) {
  const auto v = util::json::parse(
      R"({"s":"aA\n","arr":[1,-2.5e1,true,false,null],"o":{}})");
  EXPECT_EQ(v.find("s")->as_string(), "aA\n");
  const auto& arr = v.find("arr")->as_array();
  ASSERT_EQ(arr.size(), 5u);
  EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), -25.0);
  EXPECT_TRUE(arr[2].as_bool());
  EXPECT_TRUE(arr[4].is_null());
  EXPECT_THROW(util::json::parse("{} trailing"), ParseError);
  EXPECT_THROW(util::json::parse(R"({"a":inf})"), ParseError);
}

// ----------------------------------------------------------- gating

TEST(GateRules, ParseAndMatch) {
  const auto rules = pg::parse_gate_rules(
      "# comment\n"
      "workload:*_ops_per_s\n"
      "query:hash_join_1m_ms   # trailing comment\n"
      "*:durable_commits_per_s\n"
      "workload:import_*_rows_per_s\n"
      "\n");
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_TRUE(pg::is_gated(rules, "workload", "zipfian_read_t8_ops_per_s"));
  EXPECT_FALSE(pg::is_gated(rules, "workload", "zipfian_read_t8_p99_us"));
  EXPECT_TRUE(pg::is_gated(rules, "query", "hash_join_1m_ms"));
  EXPECT_FALSE(pg::is_gated(rules, "other", "hash_join_1m_ms"));
  EXPECT_TRUE(pg::is_gated(rules, "sqldb", "durable_commits_per_s"));
  // Mid-pattern star: prefix and suffix must both match.
  EXPECT_TRUE(pg::is_gated(rules, "workload", "import_t4_rows_per_s"));
  EXPECT_FALSE(pg::is_gated(rules, "workload", "import_t4_rows_per_min"));
  EXPECT_THROW(pg::parse_gate_rules("no-colon-here\n"), ParseError);
  EXPECT_THROW(pg::parse_gate_rules("workload:**_ops_per_s\n"), ParseError);
}

TEST(GateRules, DirectionHeuristic) {
  EXPECT_TRUE(pg::lower_is_better("hash_join_1m_ms"));
  EXPECT_TRUE(pg::lower_is_better("fsync_micros"));
  EXPECT_TRUE(pg::lower_is_better("p99_us"));
  EXPECT_FALSE(pg::lower_is_better("zipfian_read_t8_ops_per_s"));
  EXPECT_FALSE(pg::lower_is_better("top_k_speedup"));
  EXPECT_FALSE(pg::lower_is_better("ms"));  // the suffix alone is no name
}

// ----------------------------------------------- perfguard regression math

namespace {

pg::BenchRun make_run(const std::string& bench,
                      std::vector<std::pair<std::string, double>> metrics) {
  pg::BenchRun run;
  run.bench = bench;
  run.git_sha = "deadbee";
  run.timestamp = "2026-08-09T00:00:00Z";
  run.schema_version = 2;
  run.metrics = std::move(metrics);
  return run;
}

const std::vector<pg::GateRule> kGates = {{"workload", "*_ops_per_s"},
                                          {"workload", "*_ms"}};

const pg::Delta* find_delta(const pg::Report& report,
                            const std::string& metric) {
  for (const pg::Delta& d : report.deltas) {
    if (d.metric == metric) return &d;
  }
  return nullptr;
}

}  // namespace

TEST(PerfGuard, WithinThresholdPasses) {
  pg::PerfDb db;
  db.record_run(
      make_run("workload", {{"mix_t8_ops_per_s", 1000.0}, {"scan_ms", 100.0}}),
      "baseline");
  db.record_run(
      make_run("workload", {{"mix_t8_ops_per_s", 900.0}, {"scan_ms", 110.0}}),
      "current");

  const pg::Report report = db.compare(25.0, kGates);
  EXPECT_TRUE(report.ok());
  const pg::Delta* d = find_delta(report, "mix_t8_ops_per_s");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->gated);
  EXPECT_FALSE(d->regressed);
  EXPECT_NEAR(d->delta_pct, -10.0, 1e-6);  // computed by the SQL engine
}

TEST(PerfGuard, InjectedRegressionFails) {
  pg::PerfDb db;
  db.record_run(make_run("workload", {{"scan_ms", 100.0}}), "baseline");
  db.record_run(make_run("workload", {{"scan_ms", 200.0}}), "current");

  const pg::Report report = db.compare(25.0, kGates);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1);
  const pg::Delta* d = find_delta(report, "scan_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->regressed);
  EXPECT_NEAR(d->delta_pct, 100.0, 1e-6);
}

TEST(PerfGuard, ThroughputDropFailsAndLatencyDropPasses) {
  pg::PerfDb db;
  db.record_run(
      make_run("workload", {{"mix_t8_ops_per_s", 1000.0}, {"scan_ms", 100.0}}),
      "baseline");
  // Throughput halves (bad); latency halves (good).
  db.record_run(
      make_run("workload", {{"mix_t8_ops_per_s", 500.0}, {"scan_ms", 50.0}}),
      "current");

  const pg::Report report = db.compare(25.0, kGates);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1);
  EXPECT_TRUE(find_delta(report, "mix_t8_ops_per_s")->regressed);
  EXPECT_FALSE(find_delta(report, "scan_ms")->regressed);
}

TEST(PerfGuard, UngatedRegressionIsAdvisory) {
  pg::PerfDb db;
  db.record_run(make_run("workload", {{"p99_us", 10.0}}), "baseline");
  db.record_run(make_run("workload", {{"p99_us", 1000.0}}), "current");

  const pg::Report report = db.compare(25.0, kGates);
  EXPECT_TRUE(report.ok());
  const pg::Delta* d = find_delta(report, "p99_us");
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->gated);
  EXPECT_FALSE(d->regressed);
  EXPECT_NEAR(d->delta_pct, 9900.0, 1e-6);
}

TEST(PerfGuard, MissingGatedMetricFails) {
  pg::PerfDb db;
  db.record_run(
      make_run("workload", {{"scan_ms", 100.0}, {"other_ms", 5.0}}),
      "baseline");
  db.record_run(make_run("workload", {{"other_ms", 5.0}}), "current");

  const pg::Report report = db.compare(25.0, kGates);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.missing, 1);
  const pg::Delta* d = find_delta(report, "scan_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->missing_current);
}

TEST(PerfGuard, MissingUngatedMetricIsAdvisory) {
  pg::PerfDb db;
  db.record_run(make_run("workload", {{"p99_us", 10.0}}), "baseline");
  db.record_run(make_run("workload", {{"p50_us", 1.0}}), "current");

  const pg::Report report = db.compare(25.0, kGates);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(find_delta(report, "p99_us")->missing_current);
  EXPECT_TRUE(find_delta(report, "p50_us")->new_metric);
}

TEST(PerfGuard, FirstRunWithoutBaselinePasses) {
  pg::PerfDb db;
  db.record_run(make_run("workload", {{"scan_ms", 100.0}}), "current");

  const pg::Report report = db.compare(25.0, kGates);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.deltas.empty());
  ASSERT_EQ(report.first_run_benches.size(), 1u);
  EXPECT_EQ(report.first_run_benches[0], "workload");
}

TEST(PerfGuard, ZeroBaselineNonZeroCurrentRegresses) {
  pg::PerfDb db;
  db.record_run(make_run("workload", {{"stall_ms", 0.0}}), "baseline");
  db.record_run(make_run("workload", {{"stall_ms", 5.0}}), "current");

  const pg::Report report = db.compare(25.0, kGates);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(find_delta(report, "stall_ms")->regressed);
}

TEST(PerfGuard, LatestBaselineWins) {
  pg::PerfDb db;
  db.record_run(make_run("workload", {{"scan_ms", 10.0}}), "baseline");
  db.record_run(make_run("workload", {{"scan_ms", 100.0}}), "baseline");
  db.record_run(make_run("workload", {{"scan_ms", 110.0}}), "current");

  const pg::Report report = db.compare(25.0, kGates);
  EXPECT_TRUE(report.ok()) << "must compare against the newest baseline";
}

TEST(PerfGuard, RunsAreQueryableWithPlainSql) {
  // The dogfooding claim itself: the perf store is sqldb, so history
  // questions are SQL questions.
  pg::PerfDb db;
  db.record_run(make_run("workload", {{"a_ms", 1.0}, {"b_ms", 2.0}}),
                "baseline");
  db.record_run(make_run("query", {{"c_ms", 3.0}}), "current");

  auto rs = db.connection().execute(
      "SELECT r.bench, COUNT(*) FROM perf_runs r"
      " JOIN perf_metrics m ON m.run = r.id"
      " GROUP BY r.bench ORDER BY 1");
  ASSERT_TRUE(rs.next());
  EXPECT_EQ(rs.get_string(1), "query");
  EXPECT_EQ(rs.get_int(2), 1);
  ASSERT_TRUE(rs.next());
  EXPECT_EQ(rs.get_string(1), "workload");
  EXPECT_EQ(rs.get_int(2), 2);
}

TEST(PerfGuard, EndToEndInjectedRegressionThroughFiles) {
  // The full check.sh shape: a committed baseline file, a gate file, a
  // fresh BENCH file with one gated metric degraded past the threshold
  // — loaded from disk, stored in sqldb, compared in SQL, and failed.
  util::ScopedTempDir dir;
  const auto baseline_path = dir.path() / "BENCH_workload.json";
  util::write_file(baseline_path,
                   R"({"bench":"workload","schema_version":2,"git_sha":"base",)"
                   R"("metrics":{"zipfian_read_t8_ops_per_s":10000,)"
                   R"("zipfian_read_t8_p99_us":40}})");
  const auto current_path = dir.path() / "BENCH_workload_current.json";
  util::write_file(current_path,
                   R"({"bench":"workload","schema_version":2,"git_sha":"cur",)"
                   R"("metrics":{"zipfian_read_t8_ops_per_s":6000,)"
                   R"("zipfian_read_t8_p99_us":41}})");
  const auto gates =
      pg::parse_gate_rules("workload:*_ops_per_s\n");

  pg::PerfDb db;
  db.record_run(pg::load_bench_file(baseline_path), "baseline");
  db.record_run(pg::load_bench_file(current_path), "current");
  const pg::Report report = db.compare(25.0, gates);

  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1);
  const pg::Delta* d = find_delta(report, "zipfian_read_t8_ops_per_s");
  ASSERT_NE(d, nullptr);
  EXPECT_NEAR(d->delta_pct, -40.0, 1e-6);
  const std::string table = pg::format_report(report);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);

  // And the same current run within threshold passes.
  pg::PerfDb db2;
  db2.record_run(pg::load_bench_file(baseline_path), "baseline");
  auto ok_run = pg::load_bench_file(baseline_path);
  ok_run.metrics[0].second *= 1.1;
  db2.record_run(ok_run, "current");
  EXPECT_TRUE(db2.compare(25.0, gates).ok());
}
