// Speedup / scalability analysis (paper §5.2): given trials of the same
// application at varying processor counts, compute per-routine minimum,
// mean, and maximum speedup relative to the smallest run — the analysis
// the trial browser / speedup analyzer performed on EVH1.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "api/database_api.h"
#include "profile/trial_data.h"

namespace perfdmf::analysis {

struct RoutineSpeedup {
  std::string event_name;
  /// processor count -> statistics of per-thread speedup at that count.
  struct Point {
    std::int64_t processors = 0;
    double min_speedup = 0.0;
    double mean_speedup = 0.0;
    double max_speedup = 0.0;
    double efficiency = 0.0;  // mean speedup / (p / p_base)
  };
  std::vector<Point> points;
};

struct SpeedupReport {
  std::int64_t base_processors = 0;
  std::vector<RoutineSpeedup> routines;
  /// Whole-application speedup derived from the event with the largest
  /// base inclusive time (typically "main").
  RoutineSpeedup application;
};

/// `trials` are (processor count, profile) pairs for the same code; the
/// metric defaults to TIME. Speedup of routine r at count p is
/// mean_thread_time(r, base) / time(r, p) evaluated per thread, using
/// exclusive time. Trials are compared on events present in the base.
SpeedupReport compute_speedup(
    const std::vector<std::pair<std::int64_t, const profile::TrialData*>>& trials,
    const std::string& metric_name = "TIME");

/// Convenience over the database: loads every trial of an experiment,
/// reading the processor count from trial node counts.
SpeedupReport compute_speedup_for_experiment(api::DatabaseAPI& api,
                                             std::int64_t experiment_id,
                                             const std::string& metric_name = "TIME");

/// Render the report as a fixed-width table (one row per routine/count).
std::string format_speedup_table(const SpeedupReport& report);

/// Weak-scaling efficiency: for trials whose per-processor work is
/// constant, efficiency(r, p) = mean_time(r, base) / mean_time(r, p) —
/// 1.0 is ideal; communication-bound routines decay with log p.
struct WeakScalingReport {
  std::int64_t base_processors = 0;
  struct Row {
    std::string event_name;
    std::vector<std::pair<std::int64_t, double>> efficiency;  // (p, eff)
  };
  std::vector<Row> routines;
};
WeakScalingReport compute_weak_scaling(
    const std::vector<std::pair<std::int64_t, const profile::TrialData*>>& trials,
    const std::string& metric_name = "TIME");

}  // namespace perfdmf::analysis
