file(REMOVE_RECURSE
  "CMakeFiles/perfdmf_analysis.dir/analysis/algebra.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/algebra.cpp.o.d"
  "CMakeFiles/perfdmf_analysis.dir/analysis/comparison.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/comparison.cpp.o.d"
  "CMakeFiles/perfdmf_analysis.dir/analysis/correlation.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/correlation.cpp.o.d"
  "CMakeFiles/perfdmf_analysis.dir/analysis/derived_expr.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/derived_expr.cpp.o.d"
  "CMakeFiles/perfdmf_analysis.dir/analysis/hierarchical.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/hierarchical.cpp.o.d"
  "CMakeFiles/perfdmf_analysis.dir/analysis/imbalance.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/imbalance.cpp.o.d"
  "CMakeFiles/perfdmf_analysis.dir/analysis/kmeans.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/kmeans.cpp.o.d"
  "CMakeFiles/perfdmf_analysis.dir/analysis/pca.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/pca.cpp.o.d"
  "CMakeFiles/perfdmf_analysis.dir/analysis/scalability.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/scalability.cpp.o.d"
  "CMakeFiles/perfdmf_analysis.dir/analysis/speedup.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/speedup.cpp.o.d"
  "CMakeFiles/perfdmf_analysis.dir/analysis/stats.cpp.o"
  "CMakeFiles/perfdmf_analysis.dir/analysis/stats.cpp.o.d"
  "libperfdmf_analysis.a"
  "libperfdmf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfdmf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
