file(REMOVE_RECURSE
  "libperfdmf_io.a"
)
