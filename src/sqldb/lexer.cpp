#include "sqldb/lexer.h"

#include <cctype>

#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

namespace {
bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

std::vector<Token> tokenize(std::string_view sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < n && is_ident_char(sql[i])) ++i;
      token.type = TokenType::kIdentifier;
      token.text = std::string(sql.substr(start, i - start));
      out.push_back(std::move(token));
      continue;
    }
    if (c == '"') {  // quoted identifier
      ++i;
      std::string name;
      while (i < n && sql[i] != '"') name += sql[i++];
      if (i >= n) throw perfdmf::ParseError("unterminated quoted identifier");
      ++i;
      token.type = TokenType::kIdentifier;
      token.text = std::move(name);
      out.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::size_t start = i;
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_real = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      const std::string text(sql.substr(start, i - start));
      if (is_real) {
        token.type = TokenType::kReal;
        token.real_value = util::parse_double_or_throw(text, "numeric literal");
      } else {
        auto value = util::parse_int(text);
        if (value) {
          token.type = TokenType::kInteger;
          token.int_value = *value;
        } else {  // overflow: fall back to real
          token.type = TokenType::kReal;
          token.real_value = util::parse_double_or_throw(text, "numeric literal");
        }
      }
      token.text = text;
      out.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      for (;;) {
        if (i >= n) throw perfdmf::ParseError("unterminated string literal");
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        text += sql[i++];
      }
      token.type = TokenType::kString;
      token.text = std::move(text);
      out.push_back(std::move(token));
      continue;
    }
    // Multi-char operators first.
    auto two = sql.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "!=" || two == "<>" || two == "||") {
      token.type = TokenType::kOperator;
      token.text = std::string(two);
      i += 2;
      out.push_back(std::move(token));
      continue;
    }
    static const std::string kSingles = "=<>+-*/%(),.?;";
    if (kSingles.find(c) != std::string::npos) {
      token.type = TokenType::kOperator;
      token.text = std::string(1, c);
      ++i;
      out.push_back(std::move(token));
      continue;
    }
    throw perfdmf::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace perfdmf::sqldb
