#!/usr/bin/env bash
# CI-style check: build and run the full test suite four times —
# plain, with telemetry compiled out (-DPERFDMF_TELEMETRY=OFF), under
# ThreadSanitizer, and under AddressSanitizer+UBSan — then run the
# perfguard stage: the YCSB-style workload driver at quick scale, its
# BENCH_workload.json loaded into sqldb and gated against the committed
# baseline in bench/baselines/ (threshold PERFGUARD_THRESHOLD, default
# 50% — generous on purpose: cross-invocation throughput spread on
# shared/containerised CPU measures ~35% even best-of-3, so the gate
# catches halvings, not jitter. Tighten via PERFGUARD_THRESHOLD on
# quiet dedicated hardware).
#
# Usage:
#   scripts/check.sh            # all four configurations + perfguard
#   scripts/check.sh quick      # sanitizers run only the thread-heavy
#                               # (-L concurrency), executor-parity
#                               # (-L parity), and telemetry
#                               # (-L observability) suites
#   scripts/check.sh perfguard  # only the perfguard stage
#   scripts/check.sh perfguard --record-baseline
#                               # re-record bench/baselines/ from a
#                               # fresh run on this machine
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-}"
JOBS="$(nproc)"

run_suite() {
  local dir="$1" label_filter="$2" label_exclude="$3"
  shift 3
  local extra=()
  [ -n "$label_filter" ] && extra+=(-L "$label_filter")
  [ -n "$label_exclude" ] && extra+=(-LE "$label_exclude")
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "${extra[@]}"
}

# Quick-scale workload run + gate against the committed baseline. The
# seed baseline was recorded with --record-baseline on a quiet machine;
# on very different hardware, re-record it (perfguard fails loudly, not
# silently, when the machine class changed).
run_perfguard() {
  local record="${1:-}"
  echo "=== perfguard (workload driver + regression gate) ==="
  cmake -B build-check -S . >/dev/null
  cmake --build build-check -j "$JOBS" --target bench_workload perfguard
  (cd build-check && ./bench/bench_workload --quick)
  if [ "$record" = "--record-baseline" ]; then
    ./build-check/bench/perfguard --baseline-dir bench/baselines \
      --record-baseline build-check/BENCH_workload.json
  else
    ./build-check/bench/perfguard --baseline-dir bench/baselines \
      --threshold "${PERFGUARD_THRESHOLD:-50}" \
      build-check/BENCH_workload.json
  fi
}

if [ "$MODE" = "perfguard" ]; then
  run_perfguard "${2:-}"
  exit 0
fi

# ASan/UBSan additionally runs the executor parity harness (optimized
# hash-join/group-by/Top-K paths vs forced fallbacks); the TSan sweep
# covers the shared plan cache through the -L concurrency suites.
SAN_FILTER=""
ASAN_FILTER=""
if [ "$MODE" = "quick" ]; then
  SAN_FILTER="concurrency|observability"
  ASAN_FILTER="concurrency|parity|observability"
fi

echo "=== plain build ==="
run_suite build-check "" ""

echo "=== telemetry compiled out ==="
# The kill switch must keep the whole suite green: system tables exist
# but serve zeros, and recording compiles to nothing.
run_suite build-notel "" "" -DPERFDMF_TELEMETRY=OFF

echo "=== telemetry compiled out: introspection smoke ==="
# Explicit gate on the introspection surface with the kill switch
# thrown: EXPLAIN ANALYZE must still report real per-operator stats
# (its clocks are independent of telemetry) and the live system tables
# must stay queryable, with the counter-backed columns frozen at zero.
ctest --test-dir build-notel --output-on-failure -j "$JOBS" -L observability

echo "=== ThreadSanitizer ==="
# The fork-based crash-recovery harness (-L crash) is excluded: fork()
# does not carry TSan's internal threads into the child. The zipfian
# statistics suite (-L workload) is excluded from both sanitizers: its
# sampling tolerances assume uninstrumented execution; the plain and
# telemetry-off builds run it in full. The governance/chaos suites
# (-L robustness) assert wall-clock bounds (deadline delivery, queue
# timeouts) that TSan's timing distortion breaks; they get their own
# dedicated ASan stage below instead.
run_suite build-tsan "$SAN_FILTER" "crash|workload|robustness" \
  -DPERFDMF_SANITIZE=thread

echo "=== AddressSanitizer + UBSan ==="
run_suite build-asan "$ASAN_FILTER" "workload|robustness" \
  -DPERFDMF_SANITIZE=address,undefined

echo "=== chaos (robustness suites under ASan, fixed seed) ==="
# Governance + 220 randomized chaos schedules, memory-checked. The seed
# is pinned so CI failures reproduce exactly; a failing schedule prints
# its own "replay with PERFDMF_SEED=..." line. Override PERFDMF_SEED to
# explore different schedules locally.
PERFDMF_SEED="${PERFDMF_SEED:-3405691582}" ctest --test-dir build-asan \
  --output-on-failure -j "$JOBS" -L robustness

run_perfguard

echo "all checks passed"
