#include "analysis/derived_expr.h"

#include <vector>

#include "sqldb/expr_eval.h"
#include "sqldb/parser.h"
#include "util/error.h"

namespace perfdmf::analysis {

namespace {

/// Collect metric references (column refs) in the parsed expression.
void collect_refs(const sqldb::Expr& e, std::vector<const sqldb::Expr*>& out) {
  if (e.kind == sqldb::ExprKind::kColumnRef) out.push_back(&e);
  for (const auto& child : e.children) collect_refs(*child, out);
}

}  // namespace

std::size_t derive_expression(profile::TrialData& trial, const std::string& name,
                              const std::string& formula) {
  if (trial.find_metric(name)) {
    throw InvalidArgument("metric '" + name + "' already exists in trial");
  }
  // Parse via the SQL grammar: "SELECT <formula>".
  sqldb::Statement stmt = sqldb::parse_statement("SELECT " + formula);
  if (stmt.kind != sqldb::StatementKind::kSelect || stmt.select.items.size() != 1 ||
      stmt.select.items[0].expr == nullptr) {
    throw ParseError("derived-metric formula must be a single expression: " +
                     formula);
  }
  if (stmt.placeholder_count > 0) {
    throw ParseError("derived-metric formula cannot contain placeholders");
  }
  sqldb::Expr& expr = *stmt.select.items[0].expr;

  // Bind metric names: the "row" is one value per existing metric.
  std::vector<sqldb::BoundColumn> layout;
  for (const auto& metric : trial.metrics()) {
    layout.push_back({"", metric.name});
  }
  sqldb::bind_expr(expr, layout);  // throws DbError for unknown names
  std::vector<const sqldb::Expr*> refs;
  collect_refs(expr, refs);
  if (refs.empty()) {
    throw InvalidArgument("formula references no metrics: " + formula);
  }

  const std::size_t n_metrics = trial.metrics().size();
  const std::size_t new_index = trial.intern_metric(name);
  trial.metric(new_index).derived = true;

  // Gather per (event, thread) the metric vectors, then evaluate.
  struct Pending {
    std::size_t event;
    std::size_t thread;
    profile::IntervalDataPoint point;
  };
  std::vector<Pending> pending;
  // Iterate distinct (event, thread) pairs via the first referenced metric.
  const std::size_t anchor = refs.front()->resolved_index;
  static const sqldb::Params kNoParams;
  trial.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                              const profile::IntervalDataPoint& anchor_point) {
    if (m != anchor) return;
    // Build rows of exclusive and inclusive values across metrics.
    sqldb::Row exclusive_row(n_metrics);
    sqldb::Row inclusive_row(n_metrics);
    for (const sqldb::Expr* ref : refs) {
      const std::size_t metric = ref->resolved_index;
      const profile::IntervalDataPoint* p = trial.interval_data(e, t, metric);
      if (p == nullptr) return;  // missing operand: skip this point
      exclusive_row[metric] = sqldb::Value(p->exclusive);
      inclusive_row[metric] = sqldb::Value(p->inclusive);
    }
    const sqldb::Value exclusive = sqldb::eval_expr(expr, exclusive_row, kNoParams);
    const sqldb::Value inclusive = sqldb::eval_expr(expr, inclusive_row, kNoParams);
    profile::IntervalDataPoint point;
    point.exclusive = exclusive.is_null() ? 0.0 : exclusive.as_real();
    point.inclusive = inclusive.is_null() ? 0.0 : inclusive.as_real();
    point.num_calls = anchor_point.num_calls;
    point.num_subrs = anchor_point.num_subrs;
    pending.push_back({e, t, point});
  });
  for (const auto& p : pending) {
    trial.set_interval_data(p.event, p.thread, new_index, p.point);
  }
  return new_index;
}

}  // namespace perfdmf::analysis
