#include "io/xml_io.h"

#include <cstdio>

#include "util/error.h"
#include "util/file.h"
#include "util/strings.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace perfdmf::io {

namespace {

std::string fmt(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

double attr_double(const xml::XmlEvent& event, const char* name) {
  auto it = event.attrs.find(name);
  if (it == event.attrs.end()) {
    throw perfdmf::ParseError(std::string("perfdmf xml: <") + event.name +
                              "> missing attribute '" + name + "'");
  }
  return util::parse_double_or_throw(it->second, name);
}

std::int64_t attr_int(const xml::XmlEvent& event, const char* name) {
  auto it = event.attrs.find(name);
  if (it == event.attrs.end()) {
    throw perfdmf::ParseError(std::string("perfdmf xml: <") + event.name +
                              "> missing attribute '" + name + "'");
  }
  return util::parse_int_or_throw(it->second, name);
}

std::string attr_string(const xml::XmlEvent& event, const char* name,
                        const std::string& fallback = "") {
  auto it = event.attrs.find(name);
  return it == event.attrs.end() ? fallback : it->second;
}

std::string attr_required(const xml::XmlEvent& event, const char* name) {
  auto it = event.attrs.find(name);
  if (it == event.attrs.end()) {
    throw perfdmf::ParseError(std::string("perfdmf xml: <") + event.name +
                              "> missing attribute '" + name + "'");
  }
  return it->second;
}

}  // namespace

std::string export_xml(const profile::TrialData& trial) {
  xml::XmlWriter w;
  w.declaration();
  w.start_element("perfdmf_profile");
  w.attribute("version", "1");

  w.start_element("trial");
  w.attribute("name", trial.trial().name);
  w.attribute("nodes", static_cast<long long>(trial.trial().node_count));
  w.attribute("contexts", static_cast<long long>(trial.trial().contexts_per_node));
  w.attribute("threads", static_cast<long long>(trial.trial().threads_per_context));
  for (const auto& [name, value] : trial.trial().fields) {
    w.start_element("field");
    w.attribute("name", name);
    w.attribute("value", value);
    w.end_element();
  }
  w.end_element();

  w.start_element("metrics");
  for (std::size_t m = 0; m < trial.metrics().size(); ++m) {
    w.start_element("metric");
    w.attribute("id", static_cast<long long>(m));
    w.attribute("name", trial.metrics()[m].name);
    w.attribute("derived", trial.metrics()[m].derived ? "yes" : "no");
    w.end_element();
  }
  w.end_element();

  w.start_element("events");
  for (std::size_t e = 0; e < trial.events().size(); ++e) {
    w.start_element("event");
    w.attribute("id", static_cast<long long>(e));
    w.attribute("name", trial.events()[e].name);
    w.attribute("group", trial.events()[e].group);
    w.end_element();
  }
  w.end_element();

  w.start_element("atomicevents");
  for (std::size_t a = 0; a < trial.atomic_events().size(); ++a) {
    w.start_element("atomicevent");
    w.attribute("id", static_cast<long long>(a));
    w.attribute("name", trial.atomic_events()[a].name);
    w.attribute("group", trial.atomic_events()[a].group);
    w.end_element();
  }
  w.end_element();

  w.start_element("threads");
  for (std::size_t t = 0; t < trial.threads().size(); ++t) {
    w.start_element("thread");
    w.attribute("id", static_cast<long long>(t));
    w.attribute("node", static_cast<long long>(trial.threads()[t].node));
    w.attribute("context", static_cast<long long>(trial.threads()[t].context));
    w.attribute("thread", static_cast<long long>(trial.threads()[t].thread));
    w.end_element();
  }
  w.end_element();

  w.start_element("intervaldata");
  trial.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                              const profile::IntervalDataPoint& p) {
    w.start_element("p");
    w.attribute("e", static_cast<long long>(e));
    w.attribute("t", static_cast<long long>(t));
    w.attribute("m", static_cast<long long>(m));
    w.attribute("incl", fmt(p.inclusive));
    w.attribute("excl", fmt(p.exclusive));
    w.attribute("calls", fmt(p.num_calls));
    w.attribute("subrs", fmt(p.num_subrs));
    w.end_element();
  });
  w.end_element();

  w.start_element("atomicdata");
  trial.for_each_atomic([&](std::size_t a, std::size_t t,
                            const profile::AtomicDataPoint& p) {
    w.start_element("a");
    w.attribute("e", static_cast<long long>(a));
    w.attribute("t", static_cast<long long>(t));
    w.attribute("n", fmt(p.sample_count));
    w.attribute("max", fmt(p.maximum));
    w.attribute("min", fmt(p.minimum));
    w.attribute("mean", fmt(p.mean));
    w.attribute("sd", fmt(p.std_dev));
    w.end_element();
  });
  w.end_element();

  w.end_element();  // perfdmf_profile
  return w.str();
}

profile::TrialData import_xml(const std::string& content) {
  profile::TrialData trial;
  xml::XmlParser parser(content);
  parser.expect_start("perfdmf_profile");

  // Index remapping: the document's dense ids -> this TrialData's ids
  // (identical when the file is well-formed, but tolerate permutations).
  std::vector<std::size_t> metric_map;
  std::vector<std::size_t> event_map;
  std::vector<std::size_t> atomic_map;
  std::vector<std::size_t> thread_map;

  int depth = 1;
  while (depth > 0) {
    xml::XmlEvent event = parser.next();
    switch (event.type) {
      case xml::XmlEventType::kStartElement: {
        if (event.name == "trial") {
          trial.trial().name = attr_string(event, "name");
          trial.trial().node_count = attr_int(event, "nodes");
          trial.trial().contexts_per_node = attr_int(event, "contexts");
          trial.trial().threads_per_context = attr_int(event, "threads");
          ++depth;
        } else if (event.name == "field") {
          trial.trial().fields[attr_string(event, "name")] =
              attr_string(event, "value");
          ++depth;
        } else if (event.name == "metric") {
          const std::size_t index = trial.intern_metric(attr_required(event, "name"));
          trial.metric(index).derived = attr_string(event, "derived") == "yes";
          metric_map.push_back(index);
          ++depth;
        } else if (event.name == "event") {
          event_map.push_back(trial.intern_event(attr_required(event, "name"),
                                                 attr_string(event, "group")));
          ++depth;
        } else if (event.name == "atomicevent") {
          atomic_map.push_back(trial.intern_atomic_event(
              attr_required(event, "name"), attr_string(event, "group")));
          ++depth;
        } else if (event.name == "thread") {
          profile::ThreadId id;
          id.node = static_cast<std::int32_t>(attr_int(event, "node"));
          id.context = static_cast<std::int32_t>(attr_int(event, "context"));
          id.thread = static_cast<std::int32_t>(attr_int(event, "thread"));
          thread_map.push_back(trial.intern_thread(id));
          ++depth;
        } else if (event.name == "p") {
          const std::size_t e = static_cast<std::size_t>(attr_int(event, "e"));
          const std::size_t t = static_cast<std::size_t>(attr_int(event, "t"));
          const std::size_t m = static_cast<std::size_t>(attr_int(event, "m"));
          if (e >= event_map.size() || t >= thread_map.size() ||
              m >= metric_map.size()) {
            throw perfdmf::ParseError("perfdmf xml: <p> index out of range");
          }
          profile::IntervalDataPoint point;
          point.inclusive = attr_double(event, "incl");
          point.exclusive = attr_double(event, "excl");
          point.num_calls = attr_double(event, "calls");
          point.num_subrs = attr_double(event, "subrs");
          trial.set_interval_data(event_map[e], thread_map[t], metric_map[m], point);
          ++depth;
        } else if (event.name == "a") {
          const std::size_t a = static_cast<std::size_t>(attr_int(event, "e"));
          const std::size_t t = static_cast<std::size_t>(attr_int(event, "t"));
          if (a >= atomic_map.size() || t >= thread_map.size()) {
            throw perfdmf::ParseError("perfdmf xml: <a> index out of range");
          }
          profile::AtomicDataPoint point;
          point.sample_count = attr_double(event, "n");
          point.maximum = attr_double(event, "max");
          point.minimum = attr_double(event, "min");
          point.mean = attr_double(event, "mean");
          point.std_dev = attr_double(event, "sd");
          trial.set_atomic_data(atomic_map[a], thread_map[t], point);
          ++depth;
        } else {
          ++depth;  // container elements: metrics, events, ...
        }
        break;
      }
      case xml::XmlEventType::kEndElement:
        --depth;
        break;
      case xml::XmlEventType::kText:
        break;
      case xml::XmlEventType::kEndDocument:
        throw perfdmf::ParseError("perfdmf xml: truncated document");
    }
  }

  trial.recompute_derived_fields();
  return trial;
}

profile::TrialData XmlDataSource::load() {
  profile::TrialData trial = import_xml(util::read_file(file_));
  if (trial.trial().name.empty()) trial.trial().name = file_.filename().string();
  return trial;
}

}  // namespace perfdmf::io
