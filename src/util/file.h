// Filesystem helpers used by the profile readers/writers and the WAL.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace perfdmf::util {

/// Read an entire file into a string. Throws IoError on failure.
std::string read_file(const std::filesystem::path& path);

/// Write (truncate) a file from a string. Uses fd-based IO and verifies
/// every byte reached the OS — a short write throws IoError instead of
/// silently succeeding. Failpoint site: "util.write_file".
void write_file(const std::filesystem::path& path, std::string_view content);

/// write_file + fsync: the data is on stable storage when this returns
/// (the containing directory entry is NOT synced; see write_file_atomic).
void write_file_durable(const std::filesystem::path& path,
                        std::string_view content);

/// Crash-safe replacement write: write `path`.tmp, optionally fsync it,
/// rename over `path`, and fsync the parent directory. Readers see either
/// the old content or the complete new content, never a torn file.
/// `sync` = false skips the fsyncs (atomicity without durability — for
/// bulk regeneratable output). Failpoint sites: "util.write_file" (the
/// temp write) and "util.rename".
void write_file_atomic(const std::filesystem::path& path,
                       std::string_view content, bool sync = true);

/// fsync a directory so a rename/create/unlink inside it is durable.
/// Best effort: filesystems that reject directory fsync are ignored.
void fsync_dir(const std::filesystem::path& dir);

/// Append to a file, creating it if necessary. Throws IoError on failure.
void append_file(const std::filesystem::path& path, std::string_view content);

/// Non-recursive listing of regular files in a directory, sorted by name.
std::vector<std::filesystem::path> list_files(const std::filesystem::path& dir);

/// Create a unique temporary directory under the system temp root.
/// The caller owns removal; tests use ScopedTempDir below.
std::filesystem::path make_temp_dir(const std::string& prefix);

/// RAII temporary directory: created on construction, recursively removed
/// on destruction. Move-only.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& prefix = "perfdmf");
  ~ScopedTempDir();
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;
  ScopedTempDir(ScopedTempDir&& other) noexcept;
  ScopedTempDir& operator=(ScopedTempDir&& other) noexcept;

  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace perfdmf::util
