// E5 — abstract API vs direct SQL (paper §4): the data-management API
// "abstracts query and analysis operation into a more programmatic,
// non-SQL, form ... intended to complement the SQL interface, which is
// directly accessible by analysis tools".
//
// Shape to reproduce: both interfaces return identical results over the
// same archive; the abstraction costs little relative to raw SQL; and
// selective (filtered) queries beat loading whole trials, which is the
// rationale for the database-only access method.
// The second half benches the query-engine hot paths against their
// forced fallbacks (ExecutorTuning): equi-join as hash join vs
// index-nested-loop vs the pre-optimization pure nested loop, GROUP BY
// as hash aggregation vs the ordered-map path, ORDER BY ... LIMIT k as a
// bounded Top-K heap vs the full sort, and the per-connection plan cache
// vs re-parsing every statement.
#include <cstdio>
#include <memory>
#include <string>

#include "api/database_session.h"
#include "bench_json.h"
#include "io/synth.h"
#include "sqldb/connection.h"
#include "telemetry/metrics.h"
#include "util/timer.h"

using namespace perfdmf;

namespace {

constexpr std::int64_t kEngineRows = 1000000;
constexpr int kEventCount = 101;

/// profile(id PK, event, node, exclusive) with `rows` rows plus two
/// event tables of kEventCount rows: `event` (id PRIMARY KEY, so the
/// fallback join can use its unique index) and `event_heap` (no index at
/// all, so the fallback is the pre-optimization pure nested loop).
std::unique_ptr<sqldb::Connection> make_engine_tables(std::int64_t rows) {
  auto conn = std::make_unique<sqldb::Connection>();
  conn->execute_update(
      "CREATE TABLE profile (id INTEGER PRIMARY KEY, event INTEGER,"
      " node INTEGER, exclusive REAL)");
  conn->execute_update(
      "CREATE TABLE event (id INTEGER PRIMARY KEY, name TEXT)");
  conn->execute_update("CREATE TABLE event_heap (id INTEGER, name TEXT)");
  auto ev = conn->prepare("INSERT INTO event (id, name) VALUES (?, ?)");
  auto evh = conn->prepare("INSERT INTO event_heap (id, name) VALUES (?, ?)");
  for (int e = 0; e < kEventCount; ++e) {
    ev.set_int(1, e);
    ev.set_string(2, "routine_" + std::to_string(e));
    ev.execute_update();
    evh.set_int(1, e);
    evh.set_string(2, "routine_" + std::to_string(e));
    evh.execute_update();
  }
  auto stmt = conn->prepare(
      "INSERT INTO profile (event, node, exclusive) VALUES (?, ?, ?)");
  conn->begin();
  for (std::int64_t i = 0; i < rows; ++i) {
    stmt.set_int(1, i % kEventCount);
    stmt.set_int(2, i / kEventCount);
    stmt.set_double(3, 90.0 + static_cast<double>(i % 9973));
    stmt.execute_update();
  }
  conn->commit();
  return conn;
}

double time_query(sqldb::Connection& conn, const std::string& sql,
                  const sqldb::ExecutorTuning& tuning) {
  conn.database().set_executor_tuning(tuning);
  util::WallTimer timer;
  auto rs = conn.execute(sql);
  const double ms = timer.millis();
  if (rs.row_count() == static_cast<std::size_t>(-1)) std::abort();
  conn.database().set_executor_tuning(sqldb::ExecutorTuning{});
  return ms;
}

double time_point_queries(sqldb::Connection& conn, int reps) {
  const std::string point = "SELECT exclusive FROM profile WHERE id = 500000";
  util::WallTimer timer;
  for (int i = 0; i < reps; ++i) {
    auto rs = conn.execute(point);
    if (rs.row_count() != 1) std::abort();
  }
  return timer.millis();
}

/// Telemetry overhead on the 1M-row hot paths: the same workload with the
/// runtime switch on and off. Point queries are the worst case (the
/// per-statement span/counter cost is amortized over almost no work);
/// the 1M-row group-by shows the cost disappearing into real work.
void report_telemetry_overhead(sqldb::Connection& conn,
                               bench::BenchJson& json) {
  constexpr int kReps = 20000;
  const std::string group_by =
      "SELECT event, COUNT(*), AVG(exclusive) FROM profile GROUP BY event";
  std::printf("telemetry overhead (runtime switch), same 1M-row tables\n");
  time_point_queries(conn, 2000);  // warm caches before either side

  telemetry::set_enabled(false);
  const double point_off = time_point_queries(conn, kReps);
  util::WallTimer timer;
  auto rs = conn.execute(group_by);
  if (rs.row_count() == 0) std::abort();
  const double group_off = timer.millis();

  telemetry::set_enabled(true);
  const double point_on = time_point_queries(conn, kReps);
  timer.reset();
  rs = conn.execute(group_by);
  if (rs.row_count() == 0) std::abort();
  const double group_on = timer.millis();

  const double point_pct = 100.0 * (point_on - point_off) / point_off;
  const double group_pct = 100.0 * (group_on - group_off) / group_off;
  std::printf("  %-34s %12.1f %12.1f %+7.2f%%\n",
              ("point query x" + std::to_string(kReps)).c_str(), point_off,
              point_on, point_pct);
  std::printf("  %-34s %12.1f %12.1f %+7.2f%%\n", "group-by over 1M rows",
              group_off, group_on, group_pct);
  std::printf("  (columns: off ms, on ms, overhead)\n\n");
  json.set("telemetry_point_off_ms", point_off);
  json.set("telemetry_point_on_ms", point_on);
  json.set("telemetry_point_overhead_pct", point_pct);
  json.set("telemetry_groupby_off_ms", group_off);
  json.set("telemetry_groupby_on_ms", group_on);
  json.set("telemetry_groupby_overhead_pct", group_pct);
}

/// Introspection overhead on the 1M-row hot path: EXPLAIN ANALYZE costs
/// a handful of steady_clock reads per operator (not per row), so the
/// annotated run must track the plain statement within a few percent;
/// and a full scan of the four live system tables is bounded by the
/// registry/lock/WAL snapshot sizes, not the data volume, so it stays
/// well under the 50 ms introspection budget even with 1M rows loaded.
void report_introspection_overhead(sqldb::Connection& conn,
                                   bench::BenchJson& json) {
  const std::string group_by =
      "SELECT event, COUNT(*), AVG(exclusive) FROM profile GROUP BY event";
  std::printf("introspection overhead, same 1M-row tables\n");

  auto best_of = [&](const std::string& sql) {
    double best = 0.0;
    for (int i = 0; i < 3; ++i) {
      util::WallTimer timer;
      auto rs = conn.execute(sql);
      const double ms = timer.millis();
      if (rs.row_count() == 0) std::abort();
      if (i == 0 || ms < best) best = ms;
    }
    return best;
  };

  const double plain_ms = best_of(group_by);
  const double analyze_ms = best_of("EXPLAIN ANALYZE " + group_by);
  const double overhead_pct = 100.0 * (analyze_ms - plain_ms) / plain_ms;
  std::printf("  %-34s %12.1f %12.1f %+7.2f%%\n", "explain analyze (group-by)",
              plain_ms, analyze_ms, overhead_pct);

  const char* live_tables[] = {"PERFDMF_STATEMENTS", "PERFDMF_TRANSACTIONS",
                               "PERFDMF_LOCKS", "PERFDMF_WAL"};
  constexpr int kScans = 10;
  util::WallTimer timer;
  for (int i = 0; i < kScans; ++i) {
    for (const char* table : live_tables) {
      auto rs = conn.execute(std::string("SELECT * FROM ") + table);
      while (rs.next()) {
      }
    }
  }
  const double scan_ms = timer.millis() / kScans;
  std::printf("  %-34s %25.3f ms\n", "live-table scan (all four)", scan_ms);
  std::printf("  (columns: plain ms, analyze ms, overhead)\n\n");

  json.set("explain_analyze_plain_ms", plain_ms);
  json.set("explain_analyze_1m_ms", analyze_ms);
  json.set("explain_analyze_overhead_pct", overhead_pct);
  json.set("live_tables_scan_ms", scan_ms);
}

void report_query_engine(bench::BenchJson& json) {
  std::printf("query-engine hot paths, %lld profile rows x %d events\n",
              static_cast<long long>(kEngineRows), kEventCount);
  auto conn = make_engine_tables(kEngineRows);

  sqldb::ExecutorTuning on;  // defaults: everything enabled
  sqldb::ExecutorTuning off;
  off.hash_join = off.hash_group_by = off.top_k = false;

  std::printf("  %-34s %12s %12s %9s\n", "query", "fallback ms", "new ms",
              "speedup");

  // Equi-join, indexed build side: fallback is an index-nested-loop.
  const std::string join_indexed =
      "SELECT COUNT(*) FROM profile p JOIN event e ON p.event = e.id";
  double slow = time_query(*conn, join_indexed, off);
  double fast = time_query(*conn, join_indexed, on);
  std::printf("  %-34s %12.1f %12.1f %8.2fx\n",
              "equi-join (vs index-nested-loop)", slow, fast, slow / fast);
  json.set("hash_join_vs_index_nested_loop_speedup", slow / fast);
  json.set("hash_join_1m_ms", fast);

  // Equi-join, unindexed build side: fallback is the pre-optimization
  // pure nested loop (rows x events pair evaluations).
  const std::string join_heap =
      "SELECT COUNT(*) FROM profile p JOIN event_heap e ON p.event = e.id";
  slow = time_query(*conn, join_heap, off);
  fast = time_query(*conn, join_heap, on);
  std::printf("  %-34s %12.1f %12.1f %8.2fx\n",
              "equi-join (vs pure nested loop)", slow, fast, slow / fast);
  json.set("hash_join_vs_nested_loop_speedup", slow / fast);

  // Grouped aggregate: hash aggregation vs the ordered-map path.
  const std::string group_by =
      "SELECT event, COUNT(*), AVG(exclusive) FROM profile GROUP BY event";
  slow = time_query(*conn, group_by, off);
  fast = time_query(*conn, group_by, on);
  std::printf("  %-34s %12.1f %12.1f %8.2fx\n", "group-by aggregate", slow,
              fast, slow / fast);
  json.set("hash_group_by_speedup", slow / fast);
  json.set("hash_group_by_1m_ms", fast);

  // Top-10 of 1M: bounded heap vs sorting the full result.
  const std::string top10 =
      "SELECT id, exclusive FROM profile ORDER BY exclusive DESC, id LIMIT 10";
  slow = time_query(*conn, top10, off);
  fast = time_query(*conn, top10, on);
  std::printf("  %-34s %12.1f %12.1f %8.2fx\n", "order-by limit 10 (top-k)",
              slow, fast, slow / fast);
  json.set("top_k_speedup", slow / fast);
  json.set("top_k_1m_ms", fast);

  // Plan cache: a small repeated statement pays mostly parse cost.
  constexpr int kReps = 20000;
  const std::string point = "SELECT exclusive FROM profile WHERE id = 500000";
  conn->set_plan_cache_capacity(0);
  util::WallTimer timer;
  for (int i = 0; i < kReps; ++i) {
    auto rs = conn->execute(point);
    if (rs.row_count() != 1) std::abort();
  }
  const double uncached_ms = timer.millis();
  conn->set_plan_cache_capacity(64);
  timer.reset();
  for (int i = 0; i < kReps; ++i) {
    auto rs = conn->execute(point);
    if (rs.row_count() != 1) std::abort();
  }
  const double cached_ms = timer.millis();
  std::printf("  %-34s %12.1f %12.1f %8.2fx\n",
              ("point query x" + std::to_string(kReps) + " (plan cache)")
                  .c_str(),
              uncached_ms, cached_ms, uncached_ms / cached_ms);
  std::printf("\n");
  json.set("plan_cache_speedup", uncached_ms / cached_ms);

  report_telemetry_overhead(*conn, json);
  report_introspection_overhead(*conn, json);
}

}  // namespace

int main() {
  bench::BenchJson json("query");
  io::synth::TrialSpec spec;
  spec.nodes = 512;
  spec.event_count = 64;
  auto data = io::synth::generate_trial(spec);

  api::DatabaseSession session;
  const std::int64_t trial_id = session.save_trial(data, "app", "runs");
  auto& connection = session.api().connection();
  const std::size_t total_rows = 512u * 64u;

  std::printf("E5: API vs direct SQL over one %zu-row trial\n\n", total_rows);
  std::printf("%-44s %10s %10s\n", "operation", "rows", "time(ms)");

  util::WallTimer timer;

  // --- full trial through the API ---------------------------------------
  timer.reset();
  auto api_rows = session.get_interval_data();
  const double api_full_ms = timer.millis();
  std::printf("%-44s %10zu %10.2f\n", "API: get_interval_data (full trial)",
              api_rows.size(), api_full_ms);

  // --- full trial through raw SQL ----------------------------------------
  timer.reset();
  auto rs = connection.execute(
      "SELECT e.name, p.node, p.inclusive, p.exclusive"
      " FROM interval_event e JOIN interval_location_profile p"
      " ON p.interval_event = e.id WHERE e.trial = ?",
      {sqldb::Value(trial_id)});
  const double sql_full_ms = timer.millis();
  std::printf("%-44s %10zu %10.2f\n", "SQL: equivalent join", rs.row_count(),
              sql_full_ms);

  // --- selective query: one node ----------------------------------------
  session.set_node(17);
  timer.reset();
  auto node_rows = session.get_interval_data();
  const double api_node_ms = timer.millis();
  session.clear_node();
  std::printf("%-44s %10zu %10.2f\n", "API: node 17 only (selective access)",
              node_rows.size(), api_node_ms);

  // --- selective query: one event, SQL aggregate -------------------------
  auto events = session.get_interval_events();
  timer.reset();
  auto aggregate = session.api().aggregate_interval_column(
      trial_id, events[0].id, "exclusive");
  const double aggregate_ms = timer.millis();
  std::printf("%-44s %10zu %10.2f\n", "API: min/mean/max/stddev of one event",
              aggregate.count, aggregate_ms);

  timer.reset();
  auto rs2 = connection.execute(
      "SELECT MIN(exclusive), AVG(exclusive), MAX(exclusive),"
      " STDDEV(exclusive) FROM interval_location_profile WHERE"
      " interval_event = ?",
      {sqldb::Value(events[0].id)});
  const double sql_aggregate_ms = timer.millis();
  std::printf("%-44s %10zu %10.2f\n", "SQL: equivalent aggregate",
              rs2.row_count(), sql_aggregate_ms);

  // --- equivalence check --------------------------------------------------
  rs2 = connection.execute(
      "SELECT MIN(exclusive), AVG(exclusive), MAX(exclusive)"
      " FROM interval_location_profile WHERE interval_event = ?",
      {sqldb::Value(events[0].id)});
  rs2.next();
  const bool equivalent =
      api_rows.size() == rs.row_count() &&
      std::abs(rs2.get_double(1) - aggregate.minimum) < 1e-9 &&
      std::abs(rs2.get_double(2) - aggregate.mean) < 1e-9 &&
      std::abs(rs2.get_double(3) - aggregate.maximum) < 1e-9;
  std::printf("\nAPI and SQL results identical: %s\n",
              equivalent ? "yes" : "NO (bug!)");
  std::printf("selective node query touched %.1f%% of the rows\n\n",
              100.0 * node_rows.size() / total_rows);

  json.set("api_full_trial_ms", api_full_ms);
  json.set("sql_full_trial_ms", sql_full_ms);
  json.set("api_selective_node_ms", api_node_ms);
  json.set("api_aggregate_ms", aggregate_ms);
  json.set("sql_aggregate_ms", sql_aggregate_ms);
  json.set("api_sql_identical", equivalent ? 1.0 : 0.0);

  report_query_engine(json);
  json.write();
  return equivalent ? 0 : 1;
}
