// Execution tests for the SQL engine: DDL, DML, SELECT machinery,
// constraints, and transactions, through the JDBC-like Connection layer.
#include <gtest/gtest.h>

#include "sqldb/connection.h"
#include "sqldb/parser.h"
#include "util/error.h"

using namespace perfdmf::sqldb;
using perfdmf::DbError;

namespace {

/// A connection pre-loaded with a small two-table dataset.
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    conn.execute_update(
        "CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT NOT NULL)");
    conn.execute_update(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT NOT NULL,"
        " dept INTEGER, salary REAL, FOREIGN KEY (dept) REFERENCES dept (id))");
    conn.execute_update("INSERT INTO dept (name) VALUES ('eng'), ('ops')");
    conn.execute_update(
        "INSERT INTO emp (name, dept, salary) VALUES"
        " ('ada', 1, 100.0), ('bob', 1, 80.0), ('cyd', 2, 90.0),"
        " ('dee', 2, 70.0), ('eli', NULL, 60.0)");
  }

  Connection conn;
};

TEST_F(ExecTest, SelectAllColumnsAndRows) {
  auto rs = conn.execute("SELECT * FROM emp");
  EXPECT_EQ(rs.row_count(), 5u);
  EXPECT_EQ(rs.column_count(), 4u);
  EXPECT_EQ(rs.column_names()[1], "name");
}

TEST_F(ExecTest, WhereFiltering) {
  auto rs = conn.execute("SELECT name FROM emp WHERE salary >= 90");
  EXPECT_EQ(rs.row_count(), 2u);
}

TEST_F(ExecTest, WhereWithPlaceholders) {
  auto stmt = conn.prepare("SELECT name FROM emp WHERE dept = ? AND salary > ?");
  stmt.set_int(1, 1);
  stmt.set_double(2, 90.0);
  auto rs = stmt.execute_query();
  ASSERT_EQ(rs.row_count(), 1u);
  rs.next();
  EXPECT_EQ(rs.get_string(1), "ada");
}

TEST_F(ExecTest, PreparedStatementReusableWithNewParams) {
  auto stmt = conn.prepare("SELECT COUNT(*) FROM emp WHERE dept = ?");
  stmt.set_int(1, 1);
  auto rs1 = stmt.execute_query();
  rs1.next();
  EXPECT_EQ(rs1.get_int(1), 2);
  stmt.set_int(1, 2);
  auto rs2 = stmt.execute_query();
  rs2.next();
  EXPECT_EQ(rs2.get_int(1), 2);
}

TEST_F(ExecTest, NullComparisonExcludesRows) {
  // eli has NULL dept; dept = NULL is unknown, dept != 1 excludes NULL too.
  auto rs = conn.execute("SELECT COUNT(*) FROM emp WHERE dept != 1");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 2);
}

TEST_F(ExecTest, IsNullAndIsNotNull) {
  auto rs = conn.execute("SELECT name FROM emp WHERE dept IS NULL");
  ASSERT_EQ(rs.row_count(), 1u);
  rs.next();
  EXPECT_EQ(rs.get_string(1), "eli");
  auto rs2 = conn.execute("SELECT COUNT(*) FROM emp WHERE dept IS NOT NULL");
  rs2.next();
  EXPECT_EQ(rs2.get_int(1), 4);
}

TEST_F(ExecTest, OrderByAscDescAndPosition) {
  auto rs = conn.execute("SELECT name, salary FROM emp ORDER BY salary DESC");
  rs.next();
  EXPECT_EQ(rs.get_string(1), "ada");
  auto rs2 = conn.execute("SELECT name, salary FROM emp ORDER BY 2");
  rs2.next();
  EXPECT_EQ(rs2.get_string(1), "eli");
}

TEST_F(ExecTest, OrderByExpression) {
  auto rs = conn.execute("SELECT name FROM emp ORDER BY salary * -1");
  rs.next();
  EXPECT_EQ(rs.get_string(1), "ada");
}

TEST_F(ExecTest, LimitOffset) {
  auto rs =
      conn.execute("SELECT name FROM emp ORDER BY id LIMIT 2 OFFSET 1");
  ASSERT_EQ(rs.row_count(), 2u);
  rs.next();
  EXPECT_EQ(rs.get_string(1), "bob");
}

TEST_F(ExecTest, DistinctRemovesDuplicates) {
  auto rs = conn.execute("SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL");
  EXPECT_EQ(rs.row_count(), 2u);
}

TEST_F(ExecTest, AggregatesWithoutGroupBy) {
  auto rs = conn.execute(
      "SELECT COUNT(*), COUNT(dept), MIN(salary), MAX(salary), AVG(salary),"
      " SUM(salary) FROM emp");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 5);
  EXPECT_EQ(rs.get_int(2), 4);  // COUNT(col) skips NULLs
  EXPECT_DOUBLE_EQ(rs.get_double(3), 60.0);
  EXPECT_DOUBLE_EQ(rs.get_double(4), 100.0);
  EXPECT_DOUBLE_EQ(rs.get_double(5), 80.0);
  EXPECT_DOUBLE_EQ(rs.get_double(6), 400.0);
}

TEST_F(ExecTest, StddevMatchesSampleFormula) {
  auto rs = conn.execute("SELECT STDDEV(salary) FROM emp WHERE dept = 1");
  rs.next();
  // values 100, 80 -> sample stddev = sqrt(200) ~ 14.1421
  EXPECT_NEAR(rs.get_double(1), 14.142135623730951, 1e-9);
}

TEST_F(ExecTest, StddevOfSingleRowIsNull) {
  auto rs = conn.execute("SELECT STDDEV(salary) FROM emp WHERE name = 'ada'");
  rs.next();
  EXPECT_TRUE(rs.is_null(1));
}

TEST_F(ExecTest, AggregateOverEmptySetIsNullButCountZero) {
  auto rs = conn.execute("SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 99");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 0);
  EXPECT_TRUE(rs.is_null(2));
}

TEST_F(ExecTest, GroupByWithHaving) {
  auto rs = conn.execute(
      "SELECT dept, COUNT(*) AS n, AVG(salary) FROM emp"
      " WHERE dept IS NOT NULL GROUP BY dept HAVING AVG(salary) > 75"
      " ORDER BY dept");
  ASSERT_EQ(rs.row_count(), 2u);
  rs.next();
  EXPECT_EQ(rs.get_int(1), 1);
  EXPECT_EQ(rs.get_int(2), 2);
  EXPECT_DOUBLE_EQ(rs.get_double(3), 90.0);
}

TEST_F(ExecTest, CountDistinct) {
  conn.execute_update("INSERT INTO emp (name, dept, salary) VALUES ('fey', 1, 80)");
  auto rs = conn.execute("SELECT COUNT(DISTINCT salary) FROM emp");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 5);  // 100, 80, 90, 70, 60 (80 repeated)
}

TEST_F(ExecTest, InnerJoinWithIndexKey) {
  auto rs = conn.execute(
      "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept = d.id"
      " ORDER BY e.id");
  ASSERT_EQ(rs.row_count(), 4u);  // eli (NULL dept) drops out
  rs.next();
  EXPECT_EQ(rs.get_string(1), "ada");
  EXPECT_EQ(rs.get_string(2), "eng");
}

TEST_F(ExecTest, JoinWithArbitraryCondition) {
  auto rs = conn.execute(
      "SELECT COUNT(*) FROM emp a JOIN emp b ON a.salary < b.salary");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 10);  // 5 choose 2 ordered pairs
}

TEST_F(ExecTest, LeftJoinKeepsUnmatchedRowsNullPadded) {
  auto rs = conn.execute(
      "SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON e.dept = d.id"
      " ORDER BY e.id");
  ASSERT_EQ(rs.row_count(), 5u);  // eli kept with NULL dept name
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rs.next());
    EXPECT_FALSE(rs.is_null(2));
  }
  ASSERT_TRUE(rs.next());
  EXPECT_EQ(rs.get_string(1), "eli");
  EXPECT_TRUE(rs.is_null(2));
}

TEST_F(ExecTest, LeftOuterJoinSpelling) {
  auto rs = conn.execute(
      "SELECT COUNT(*) FROM emp e LEFT OUTER JOIN dept d ON e.dept = d.id");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 5);
}

TEST_F(ExecTest, LeftJoinAggregatesPerParent) {
  // Departments with how many employees (including a new empty one).
  conn.execute_update("INSERT INTO dept (name) VALUES ('empty')");
  auto rs = conn.execute(
      "SELECT d.name, COUNT(e.id) FROM dept d LEFT JOIN emp e"
      " ON e.dept = d.id GROUP BY d.name ORDER BY 1");
  ASSERT_EQ(rs.row_count(), 3u);
  rs.next();
  EXPECT_EQ(rs.get_string(1), "empty");
  EXPECT_EQ(rs.get_int(2), 0);  // COUNT(col) skips the NULL padding
  rs.next();
  EXPECT_EQ(rs.get_string(1), "eng");
  EXPECT_EQ(rs.get_int(2), 2);
}

TEST_F(ExecTest, PredicatePushDownWithJoinMatchesPostFilter) {
  // Same query with the filter on the base table vs on the joined table;
  // the base-table filter takes the push-down path.
  auto rs1 = conn.execute(
      "SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept = d.id"
      " WHERE e.salary > 75");
  rs1.next();
  auto rs2 = conn.execute(
      "SELECT COUNT(*) FROM dept d JOIN emp e ON e.dept = d.id"
      " WHERE e.salary > 75");
  rs2.next();
  EXPECT_EQ(rs1.get_int(1), rs2.get_int(1));
  EXPECT_EQ(rs1.get_int(1), 3);  // ada 100, bob 80, cyd 90
}

TEST_F(ExecTest, SelectExpressionWithoutFrom) {
  auto rs = conn.execute("SELECT 2 + 3 * 4, 'a' || 'b'");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 14);
  EXPECT_EQ(rs.get_string(2), "ab");
}

TEST_F(ExecTest, ScalarFunctions) {
  auto rs = conn.execute(
      "SELECT ABS(-5), LOWER('AbC'), UPPER('x'), LENGTH('four'),"
      " COALESCE(NULL, NULL, 9), ROUND(2.567, 2), SQRT(16.0)");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 5);
  EXPECT_EQ(rs.get_string(2), "abc");
  EXPECT_EQ(rs.get_string(3), "X");
  EXPECT_EQ(rs.get_int(4), 4);
  EXPECT_EQ(rs.get_int(5), 9);
  EXPECT_DOUBLE_EQ(rs.get_double(6), 2.57);
  EXPECT_DOUBLE_EQ(rs.get_double(7), 4.0);
}

TEST_F(ExecTest, LikePatterns) {
  auto rs = conn.execute("SELECT COUNT(*) FROM emp WHERE name LIKE '%d%'");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 3);  // ada, cyd, dee
}

TEST_F(ExecTest, LikeUnderscore) {
  auto rs = conn.execute("SELECT COUNT(*) FROM emp WHERE name LIKE '_o_'");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 1);  // bob
}

TEST_F(ExecTest, InListAndBetween) {
  auto rs = conn.execute(
      "SELECT COUNT(*) FROM emp WHERE salary IN (60.0, 70.0, 999.0)");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 2);
  auto rs2 =
      conn.execute("SELECT COUNT(*) FROM emp WHERE salary BETWEEN 70 AND 90");
  rs2.next();
  EXPECT_EQ(rs2.get_int(1), 3);
}

TEST_F(ExecTest, DivisionByZeroYieldsNull) {
  auto rs = conn.execute("SELECT 1 / 0, 5 % 0");
  rs.next();
  EXPECT_TRUE(rs.is_null(1));
  EXPECT_TRUE(rs.is_null(2));
}

TEST_F(ExecTest, UpdateRowsAndReturnCount) {
  const std::size_t n =
      conn.execute_update("UPDATE emp SET salary = salary + 10 WHERE dept = 1");
  EXPECT_EQ(n, 2u);
  auto rs = conn.execute("SELECT salary FROM emp WHERE name = 'ada'");
  rs.next();
  EXPECT_DOUBLE_EQ(rs.get_double(1), 110.0);
}

TEST_F(ExecTest, DeleteRowsAndReturnCount) {
  EXPECT_EQ(conn.execute_update("DELETE FROM emp WHERE salary < 75"), 2u);
  auto rs = conn.execute("SELECT COUNT(*) FROM emp");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 3);
}

TEST_F(ExecTest, PrimaryKeyAutoIncrementAndUnique) {
  conn.execute_update("INSERT INTO dept (name) VALUES ('qa')");
  auto rs = conn.execute("SELECT MAX(id) FROM dept");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 3);
  EXPECT_THROW(
      conn.execute_update("INSERT INTO dept (id, name) VALUES (3, 'dup')"),
      DbError);
}

TEST_F(ExecTest, ExplicitPkAdvancesAutoIncrement) {
  conn.execute_update("INSERT INTO dept (id, name) VALUES (50, 'fixed')");
  conn.execute_update("INSERT INTO dept (name) VALUES ('after')");
  auto rs = conn.execute("SELECT id FROM dept WHERE name = 'after'");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 51);
}

TEST_F(ExecTest, NotNullConstraint) {
  EXPECT_THROW(conn.execute_update("INSERT INTO dept (name) VALUES (NULL)"),
               DbError);
}

TEST_F(ExecTest, ForeignKeyInsertEnforced) {
  EXPECT_THROW(conn.execute_update(
                   "INSERT INTO emp (name, dept, salary) VALUES ('x', 99, 1)"),
               DbError);
  // NULL FK is allowed.
  EXPECT_NO_THROW(conn.execute_update(
      "INSERT INTO emp (name, dept, salary) VALUES ('x', NULL, 1)"));
}

TEST_F(ExecTest, ForeignKeyDeleteRestricted) {
  EXPECT_THROW(conn.execute_update("DELETE FROM dept WHERE id = 1"), DbError);
  conn.execute_update("DELETE FROM emp WHERE dept = 1");
  EXPECT_NO_THROW(conn.execute_update("DELETE FROM dept WHERE id = 1"));
}

TEST_F(ExecTest, DropTableGuardsReferences) {
  EXPECT_THROW(conn.execute_update("DROP TABLE dept"), DbError);
  conn.execute_update("DELETE FROM emp");
  EXPECT_NO_THROW(conn.execute_update("DROP TABLE emp"));
  EXPECT_NO_THROW(conn.execute_update("DROP TABLE dept"));
  EXPECT_NO_THROW(conn.execute_update("DROP TABLE IF EXISTS dept"));
  EXPECT_THROW(conn.execute_update("DROP TABLE dept"), DbError);
}

TEST_F(ExecTest, AlterTableAddAndDropColumn) {
  conn.execute_update("ALTER TABLE emp ADD COLUMN title TEXT DEFAULT 'tbd'");
  auto rs = conn.execute("SELECT title FROM emp WHERE name = 'ada'");
  rs.next();
  EXPECT_EQ(rs.get_string(1), "tbd");
  conn.execute_update("UPDATE emp SET title = 'chief' WHERE name = 'ada'");
  conn.execute_update("ALTER TABLE emp DROP COLUMN title");
  EXPECT_THROW(conn.execute("SELECT title FROM emp"), DbError);
}

TEST_F(ExecTest, TransactionCommitKeepsChanges) {
  conn.begin();
  conn.execute_update("INSERT INTO dept (name) VALUES ('tx')");
  conn.commit();
  auto rs = conn.execute("SELECT COUNT(*) FROM dept");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 3);
}

TEST_F(ExecTest, TransactionRollbackUndoesInsertUpdateDelete) {
  conn.begin();
  conn.execute_update("INSERT INTO dept (name) VALUES ('tx')");
  conn.execute_update("UPDATE emp SET salary = 0 WHERE name = 'ada'");
  conn.execute_update("DELETE FROM emp WHERE name = 'bob'");
  conn.rollback();

  auto rs = conn.execute("SELECT COUNT(*) FROM dept");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 2);
  auto rs2 = conn.execute("SELECT salary FROM emp WHERE name = 'ada'");
  rs2.next();
  EXPECT_DOUBLE_EQ(rs2.get_double(1), 100.0);
  auto rs3 = conn.execute("SELECT COUNT(*) FROM emp WHERE name = 'bob'");
  rs3.next();
  EXPECT_EQ(rs3.get_int(1), 1);
}

TEST_F(ExecTest, RollbackOfInsertThenDeleteOfSameRow) {
  auto count = [&] {
    auto rs = conn.execute("SELECT COUNT(*) FROM dept");
    rs.next();
    return rs.get_int(1);
  };
  const auto before = count();
  conn.begin();
  conn.execute_update("INSERT INTO dept (name) VALUES ('ephemeral')");
  conn.execute_update("DELETE FROM dept WHERE name = 'ephemeral'");
  conn.rollback();
  EXPECT_EQ(count(), before);
}

TEST_F(ExecTest, NestedBeginRejected) {
  conn.begin();
  EXPECT_THROW(conn.begin(), DbError);
  conn.rollback();
  EXPECT_THROW(conn.rollback(), DbError);
  EXPECT_THROW(conn.commit(), DbError);
}

TEST_F(ExecTest, ResultSetAccessors) {
  auto rs = conn.execute("SELECT id, name FROM dept ORDER BY id");
  EXPECT_THROW(rs.get(1), DbError);  // before first next()
  ASSERT_TRUE(rs.next());
  EXPECT_EQ(rs.get_int("id"), 1);
  EXPECT_EQ(rs.get_string("NAME"), "eng");  // case-insensitive names
  EXPECT_THROW(rs.get(3), DbError);
  EXPECT_THROW(rs.get("absent"), DbError);
  ASSERT_TRUE(rs.next());
  EXPECT_FALSE(rs.next());
  EXPECT_THROW(rs.get(1), DbError);  // after the end
}

TEST_F(ExecTest, MetaDataReflection) {
  auto meta = conn.get_meta_data();
  auto tables = meta.get_tables();
  // dept + emp, then the six virtual system tables.
  ASSERT_EQ(tables.size(), 8u);
  EXPECT_EQ(tables[0], "dept");
  auto columns = meta.get_columns("emp");
  ASSERT_EQ(columns.size(), 4u);
  EXPECT_EQ(columns[0].name, "id");
  EXPECT_TRUE(columns[0].primary_key);
  auto fks = meta.get_foreign_keys("emp");
  ASSERT_EQ(fks.size(), 1u);
  EXPECT_EQ(fks[0].parent_table, "dept");
}

TEST_F(ExecTest, UnknownColumnAndTableErrors) {
  EXPECT_THROW(conn.execute("SELECT bogus FROM emp"), DbError);
  EXPECT_THROW(conn.execute("SELECT * FROM bogus"), DbError);
  EXPECT_THROW(conn.execute("SELECT e.name FROM emp x"), DbError);
}

TEST_F(ExecTest, AmbiguousColumnDetected) {
  EXPECT_THROW(
      conn.execute("SELECT name FROM emp a JOIN emp b ON a.id = b.id"), DbError);
}

TEST_F(ExecTest, MissingBindParameterThrows) {
  auto stmt = conn.prepare("SELECT * FROM emp WHERE id = ?");
  EXPECT_NO_THROW(stmt.execute_query());  // NULL-bound: id = NULL matches none
  EXPECT_THROW(stmt.set_int(2, 1), DbError);
}

TEST_F(ExecTest, IndexAcceleratedEqualsMatchesScanResults) {
  conn.execute_update("CREATE INDEX idx_salary ON emp (salary)");
  auto rs = conn.execute("SELECT name FROM emp WHERE salary = 80.0");
  ASSERT_EQ(rs.row_count(), 1u);
  rs.next();
  EXPECT_EQ(rs.get_string(1), "bob");
  // Range through the same index.
  auto rs2 =
      conn.execute("SELECT COUNT(*) FROM emp WHERE salary BETWEEN 65 AND 85");
  rs2.next();
  EXPECT_EQ(rs2.get_int(1), 2);
}

}  // namespace

namespace {

TEST_F(ExecTest, ThreeTableJoin) {
  conn.execute_update(
      "CREATE TABLE badge (id INTEGER PRIMARY KEY, emp INTEGER, code TEXT,"
      " FOREIGN KEY (emp) REFERENCES emp (id))");
  conn.execute_update(
      "INSERT INTO badge (emp, code) VALUES (1, 'A1'), (3, 'C3')");
  auto rs = conn.execute(
      "SELECT e.name, d.name, b.code FROM emp e"
      " JOIN dept d ON e.dept = d.id"
      " JOIN badge b ON b.emp = e.id ORDER BY e.id");
  ASSERT_EQ(rs.row_count(), 2u);
  rs.next();
  EXPECT_EQ(rs.get_string(1), "ada");
  EXPECT_EQ(rs.get_string(2), "eng");
  EXPECT_EQ(rs.get_string(3), "A1");
  rs.next();
  EXPECT_EQ(rs.get_string(1), "cyd");
  EXPECT_EQ(rs.get_string(3), "C3");
}

TEST_F(ExecTest, GroupByNullKeyFormsItsOwnGroup) {
  auto rs = conn.execute(
      "SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY 2 DESC");
  // Groups: dept 1 (2), dept 2 (2), NULL (1).
  EXPECT_EQ(rs.row_count(), 3u);
  std::size_t total = 0;
  std::size_t null_groups = 0;
  auto rs2 = conn.execute("SELECT dept, COUNT(*) FROM emp GROUP BY dept");
  while (rs2.next()) {
    total += static_cast<std::size_t>(rs2.get_int(2));
    if (rs2.is_null(1)) ++null_groups;
  }
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(null_groups, 1u);
}

TEST_F(ExecTest, DistinctTreatsNullsAsEqual) {
  conn.execute_update("INSERT INTO emp (name, dept, salary) VALUES ('fay', NULL, 1)");
  auto rs = conn.execute("SELECT DISTINCT dept FROM emp");
  EXPECT_EQ(rs.row_count(), 3u);  // 1, 2, NULL
}

TEST_F(ExecTest, LimitZeroAndOffsetBeyondEnd) {
  auto rs = conn.execute("SELECT * FROM emp LIMIT 0");
  EXPECT_EQ(rs.row_count(), 0u);
  auto rs2 = conn.execute("SELECT * FROM emp ORDER BY id LIMIT 10 OFFSET 99");
  EXPECT_EQ(rs2.row_count(), 0u);
}

TEST_F(ExecTest, OrderByPutsNullsFirst) {
  auto rs = conn.execute("SELECT name FROM emp ORDER BY dept, name");
  rs.next();
  EXPECT_EQ(rs.get_string(1), "eli");  // NULL dept sorts before 1 and 2
}

TEST_F(ExecTest, SelfJoinWithAliases) {
  auto rs = conn.execute(
      "SELECT a.name, b.name FROM emp a JOIN emp b"
      " ON a.dept = b.dept AND a.id < b.id ORDER BY a.id");
  // Pairs within a department: (ada,bob), (cyd,dee).
  ASSERT_EQ(rs.row_count(), 2u);
  rs.next();
  EXPECT_EQ(rs.get_string(1), "ada");
  EXPECT_EQ(rs.get_string(2), "bob");
}

TEST_F(ExecTest, UpdateWithIndexedWhere) {
  conn.execute_update("CREATE INDEX idx_emp_dept ON emp (dept)");
  EXPECT_EQ(conn.execute_update("UPDATE emp SET salary = 0 WHERE dept = 2"), 2u);
  auto rs = conn.execute("SELECT COUNT(*) FROM emp WHERE salary = 0");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 2);
}

TEST_F(ExecTest, DeleteWithIndexedWhere) {
  conn.execute_update("CREATE INDEX idx_emp_dept ON emp (dept)");
  EXPECT_EQ(conn.execute_update("DELETE FROM emp WHERE dept = 2"), 2u);
  auto rs = conn.execute("SELECT COUNT(*) FROM emp");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 3);
}

TEST_F(ExecTest, AggregateInsideExpression) {
  auto rs = conn.execute("SELECT MAX(salary) - MIN(salary), AVG(salary) * 2"
                         " FROM emp WHERE dept IS NOT NULL");
  rs.next();
  EXPECT_DOUBLE_EQ(rs.get_double(1), 30.0);   // 100 - 70
  EXPECT_DOUBLE_EQ(rs.get_double(2), 170.0);  // 85 * 2
}

TEST_F(ExecTest, HavingOnBareColumnUsesGroupRepresentative) {
  auto rs = conn.execute(
      "SELECT dept, COUNT(*) FROM emp WHERE dept IS NOT NULL"
      " GROUP BY dept HAVING dept = 1");
  ASSERT_EQ(rs.row_count(), 1u);
  rs.next();
  EXPECT_EQ(rs.get_int(1), 1);
}

TEST_F(ExecTest, QuotedIdentifiersWorkInDml) {
  conn.execute_update("ALTER TABLE emp ADD COLUMN \"weird name\" TEXT");
  conn.execute_update("UPDATE emp SET \"weird name\" = 'x' WHERE id = 1");
  auto rs = conn.execute("SELECT \"weird name\" FROM emp WHERE id = 1");
  rs.next();
  EXPECT_EQ(rs.get_string(1), "x");
}

TEST_F(ExecTest, InsertDefaultsApplyForOmittedColumns) {
  conn.execute_update(
      "CREATE TABLE defaults_table (id INTEGER PRIMARY KEY,"
      " label TEXT DEFAULT 'none', score REAL DEFAULT 1.5)");
  conn.execute_update("INSERT INTO defaults_table (id) VALUES (1)");
  auto rs = conn.execute("SELECT label, score FROM defaults_table");
  rs.next();
  EXPECT_EQ(rs.get_string(1), "none");
  EXPECT_DOUBLE_EQ(rs.get_double(2), 1.5);
}

}  // namespace

namespace {

TEST_F(ExecTest, InsertFromSelect) {
  conn.execute_update(
      "CREATE TABLE well_paid (id INTEGER PRIMARY KEY, name TEXT, pay REAL)");
  const std::size_t inserted = conn.execute_update(
      "INSERT INTO well_paid (name, pay)"
      " SELECT name, salary FROM emp WHERE salary >= 80 ");
  EXPECT_EQ(inserted, 3u);
  auto rs = conn.execute("SELECT name FROM well_paid ORDER BY pay DESC");
  rs.next();
  EXPECT_EQ(rs.get_string(1), "ada");
}

TEST_F(ExecTest, InsertFromSelectWithAggregates) {
  conn.execute_update(
      "CREATE TABLE dept_stats (dept INTEGER, n INTEGER, avg_pay REAL)");
  conn.execute_update(
      "INSERT INTO dept_stats (dept, n, avg_pay)"
      " SELECT dept, COUNT(*), AVG(salary) FROM emp"
      " WHERE dept IS NOT NULL GROUP BY dept");
  auto rs = conn.execute("SELECT n, avg_pay FROM dept_stats WHERE dept = 1");
  ASSERT_TRUE(rs.next());
  EXPECT_EQ(rs.get_int(1), 2);
  EXPECT_DOUBLE_EQ(rs.get_double(2), 90.0);
}

TEST_F(ExecTest, InsertFromSelfSelectIsWellDefined) {
  // Reading from the table being written must not loop (materialized).
  const std::size_t before = [&] {
    auto rs = conn.execute("SELECT COUNT(*) FROM emp");
    rs.next();
    return static_cast<std::size_t>(rs.get_int(1));
  }();
  conn.execute_update(
      "INSERT INTO emp (name, dept, salary)"
      " SELECT name, dept, salary + 1 FROM emp");
  auto rs = conn.execute("SELECT COUNT(*) FROM emp");
  rs.next();
  EXPECT_EQ(static_cast<std::size_t>(rs.get_int(1)), before * 2);
}

TEST_F(ExecTest, InsertFromSelectRespectsConstraints) {
  // Selecting a NULL into a NOT NULL column must fail.
  EXPECT_THROW(conn.execute_update(
                   "INSERT INTO dept (name) SELECT NULL FROM emp LIMIT 1"),
               DbError);
  // FK violations propagate too.
  EXPECT_THROW(conn.execute_update(
                   "INSERT INTO emp (name, dept, salary)"
                   " SELECT 'ghost', 99, 1 FROM dept LIMIT 1"),
               DbError);
}

TEST_F(ExecTest, InsertFromSelectWithPlaceholders) {
  auto stmt = conn.prepare(
      "INSERT INTO emp (name, dept, salary)"
      " SELECT name || '_copy', dept, salary * ? FROM emp WHERE dept = ?");
  stmt.set_double(1, 2.0);
  stmt.set_int(2, 1);
  EXPECT_EQ(stmt.execute_update(), 2u);
  auto rs = conn.execute("SELECT salary FROM emp WHERE name = 'ada_copy'");
  ASSERT_TRUE(rs.next());
  EXPECT_DOUBLE_EQ(rs.get_double(1), 200.0);
}

}  // namespace

namespace {

TEST_F(ExecTest, ViewSelectsLikeATable) {
  conn.execute_update(
      "CREATE VIEW well_paid AS SELECT name, salary FROM emp WHERE salary >= 80");
  auto rs = conn.execute("SELECT * FROM well_paid ORDER BY salary DESC");
  ASSERT_EQ(rs.row_count(), 3u);
  rs.next();
  EXPECT_EQ(rs.get_string(1), "ada");
  // Views reflect later base-table changes (re-materialized per query).
  conn.execute_update("UPDATE emp SET salary = 200 WHERE name = 'eli'");
  auto rs2 = conn.execute("SELECT COUNT(*) FROM well_paid");
  rs2.next();
  EXPECT_EQ(rs2.get_int(1), 4);
}

TEST_F(ExecTest, ViewWithAggregatesAndFilterOnView) {
  conn.execute_update(
      "CREATE VIEW dept_stats AS SELECT dept AS d, COUNT(*) AS n,"
      " AVG(salary) AS pay FROM emp WHERE dept IS NOT NULL GROUP BY dept");
  auto rs = conn.execute("SELECT d, pay FROM dept_stats WHERE n = 2 ORDER BY d");
  ASSERT_EQ(rs.row_count(), 2u);
  rs.next();
  EXPECT_EQ(rs.get_int(1), 1);
  EXPECT_DOUBLE_EQ(rs.get_double(2), 90.0);
}

TEST_F(ExecTest, ViewJoinsAgainstTables) {
  conn.execute_update(
      "CREATE VIEW engineers AS SELECT id, name, dept FROM emp WHERE dept = 1");
  auto rs = conn.execute(
      "SELECT v.name, d.name FROM engineers v JOIN dept d ON v.dept = d.id"
      " ORDER BY v.id");
  ASSERT_EQ(rs.row_count(), 2u);
  rs.next();
  EXPECT_EQ(rs.get_string(2), "eng");
}

TEST_F(ExecTest, ViewOnViewAndCycleDetection) {
  conn.execute_update("CREATE VIEW v1 AS SELECT name FROM emp WHERE dept = 1");
  conn.execute_update("CREATE VIEW v2 AS SELECT name FROM v1 WHERE name LIKE 'a%'");
  auto rs = conn.execute("SELECT * FROM v2");
  ASSERT_EQ(rs.row_count(), 1u);
  rs.next();
  EXPECT_EQ(rs.get_string(1), "ada");
  // A view over a missing table fails at use, not at create: views bind late.
  conn.execute_update("CREATE VIEW dangling AS SELECT x FROM not_yet");
  EXPECT_THROW(conn.execute("SELECT * FROM dangling"), DbError);
}

TEST_F(ExecTest, ViewDdlRules) {
  conn.execute_update("CREATE VIEW v AS SELECT name FROM emp");
  EXPECT_THROW(conn.execute_update("CREATE VIEW v AS SELECT 1"), DbError);
  EXPECT_THROW(conn.execute_update("CREATE TABLE v (x INTEGER)"), DbError);
  EXPECT_THROW(conn.execute_update("CREATE VIEW dept AS SELECT 1"), DbError);
  EXPECT_THROW(parse_statement("CREATE VIEW p AS SELECT * FROM t WHERE x = ?"),
               perfdmf::ParseError);
  conn.execute_update("DROP VIEW v");
  EXPECT_THROW(conn.execute_update("DROP VIEW v"), DbError);
  EXPECT_NO_THROW(conn.execute_update("DROP VIEW IF EXISTS v"));
  auto views = conn.get_meta_data().get_views();
  EXPECT_TRUE(views.empty());
}

TEST_F(ExecTest, ViewListedInMetadata) {
  conn.execute_update("CREATE VIEW v AS SELECT name FROM emp");
  auto views = conn.get_meta_data().get_views();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0], "v");
}

// ------------------------------------------------- planner & plan cache

/// EXPLAIN output flattened to one newline-joined string for assertions.
std::string explain(Connection& conn, const std::string& sql) {
  auto rs = conn.execute("EXPLAIN " + sql);
  std::string out;
  while (rs.next()) {
    out += rs.get_string(1);
    out += '\n';
  }
  return out;
}

TEST_F(ExecTest, StrictIndexRangeBoundsMatchUnindexedAnswer) {
  // k is indexed, u holds the same values unindexed; every range shape
  // must produce the same rows through both access paths. Keys are
  // duplicated so boundary over-fetch would be visible as extra rows.
  conn.execute_update("CREATE TABLE pts (k INTEGER, u INTEGER)");
  auto ins = conn.prepare("INSERT INTO pts (k, u) VALUES (?, ?)");
  for (int i = 0; i < 10; ++i) {
    for (int dup = 0; dup < 2; ++dup) {
      ins.set_int(1, i);
      ins.set_int(2, i);
      ins.execute_update();
    }
  }
  conn.execute_update("CREATE INDEX pts_k ON pts (k)");

  const char* shapes[] = {
      "%s > 5",          "%s >= 5",          "%s < 5",
      "%s <= 5",         "%s > 2 AND %s < 7", "%s >= 2 AND %s < 7",
      "%s BETWEEN 3 AND 6", "%s BETWEEN 3 AND 6 AND %s > 3",
      "%s BETWEEN 3 AND 6 AND %s < 6", "%s > 7 AND %s < 3",
  };
  for (const char* shape : shapes) {
    auto fill = [&](const std::string& column) {
      std::string sql = shape;
      std::size_t at;
      while ((at = sql.find("%s")) != std::string::npos) {
        sql.replace(at, 2, column);
      }
      return sql;
    };
    auto indexed = conn.execute("SELECT COUNT(*), SUM(k) FROM pts WHERE " +
                                fill("k"));
    auto plain = conn.execute("SELECT COUNT(*), SUM(u) FROM pts WHERE " +
                              fill("u"));
    indexed.next();
    plain.next();
    EXPECT_EQ(indexed.get_int(1), plain.get_int(1)) << shape;
    EXPECT_EQ(indexed.get(2).is_null(), plain.get(2).is_null()) << shape;
    if (!indexed.get(2).is_null()) {
      EXPECT_EQ(indexed.get_int(2), plain.get_int(2)) << shape;
    }
  }
  // The strict shapes actually go through the index.
  std::string plan = explain(conn, "SELECT k FROM pts WHERE k > 5");
  EXPECT_NE(plan.find("index-range(k)"), std::string::npos) << plan;
}

TEST_F(ExecTest, NegativeLimitOffsetRejected) {
  EXPECT_THROW(conn.execute("SELECT name FROM emp ORDER BY name LIMIT -1"),
               DbError);
  EXPECT_THROW(
      conn.execute("SELECT name FROM emp ORDER BY name LIMIT 2 OFFSET -3"),
      DbError);

  auto stmt = conn.prepare("SELECT name FROM emp ORDER BY name LIMIT ?");
  stmt.set_int(1, -5);
  EXPECT_THROW(stmt.execute_query(), DbError);
  stmt.set_int(1, 2);
  auto rs = stmt.execute_query();
  EXPECT_EQ(rs.row_count(), 2u);

  auto offs = conn.prepare("SELECT name FROM emp ORDER BY name LIMIT 2 OFFSET ?");
  offs.set_int(1, -1);
  EXPECT_THROW(offs.execute_query(), DbError);

  auto typed = conn.prepare("SELECT name FROM emp LIMIT ?");
  typed.set_string(1, "ten");
  EXPECT_THROW(typed.execute_query(), DbError);
}

TEST_F(ExecTest, LimitZeroAndLimitOffsetStillWork) {
  auto rs = conn.execute("SELECT name FROM emp ORDER BY salary DESC LIMIT 0");
  EXPECT_EQ(rs.row_count(), 0u);
  auto rs2 =
      conn.execute("SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1");
  ASSERT_EQ(rs2.row_count(), 2u);
  rs2.next();
  EXPECT_EQ(rs2.get_string(1), "cyd");  // 100, [90, 80], 70, 60
  rs2.next();
  EXPECT_EQ(rs2.get_string(1), "bob");
}

TEST_F(ExecTest, UniqueIndexEqualityPreferredOverFirstIndexedEquality) {
  conn.execute_update("CREATE TABLE files (id INTEGER, node INTEGER, name TEXT)");
  conn.execute_update("CREATE INDEX files_node ON files (node)");
  conn.execute_update("CREATE UNIQUE INDEX files_id ON files (id)");
  conn.execute_update(
      "INSERT INTO files (id, node, name) VALUES"
      " (1, 1, 'a'), (2, 1, 'b'), (3, 1, 'c'), (4, 2, 'd')");
  // Both equalities are indexed and `node = 1` comes first in the WHERE
  // conjunction, but the unique index pins at most one row.
  std::string plan =
      explain(conn, "SELECT name FROM files WHERE node = 1 AND id = 3");
  EXPECT_NE(plan.find("unique-index-eq(id)"), std::string::npos) << plan;
  auto rs = conn.execute("SELECT name FROM files WHERE node = 1 AND id = 3");
  ASSERT_EQ(rs.row_count(), 1u);
  rs.next();
  EXPECT_EQ(rs.get_string(1), "c");
}

TEST_F(ExecTest, ExplainReportsAccessPathJoinAndOrderStrategies) {
  std::string plan = explain(
      conn, "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept = d.id");
  EXPECT_NE(plan.find("from e: scan"), std::string::npos) << plan;
  EXPECT_NE(plan.find("join d: hash build="), std::string::npos) << plan;

  plan = explain(conn, "SELECT name FROM emp WHERE id = 3");
  EXPECT_NE(plan.find("unique-index-eq(id)"), std::string::npos) << plan;

  plan = explain(conn, "SELECT name FROM emp ORDER BY salary DESC LIMIT 2");
  EXPECT_NE(plan.find("order-by: top-k(2)"), std::string::npos) << plan;

  plan = explain(conn, "SELECT name FROM emp ORDER BY salary");
  EXPECT_NE(plan.find("order-by: sort"), std::string::npos) << plan;

  plan = explain(conn, "SELECT dept, COUNT(*) FROM emp GROUP BY dept");
  EXPECT_NE(plan.find("group-by: hash groups=3"), std::string::npos) << plan;

  // Forcing the fallbacks changes the reported strategies.
  ExecutorTuning off;
  off.hash_join = off.hash_group_by = off.top_k = false;
  conn.database().set_executor_tuning(off);
  plan = explain(conn,
                 "SELECT e.name, dept, COUNT(*) cnt FROM emp e"
                 " JOIN dept d ON e.dept = d.id"
                 " GROUP BY e.name, dept ORDER BY cnt LIMIT 2");
  EXPECT_NE(plan.find("join d: index-nested-loop"), std::string::npos) << plan;
  EXPECT_NE(plan.find("group-by: ordered"), std::string::npos) << plan;
  EXPECT_NE(plan.find("order-by: sort"), std::string::npos) << plan;
  conn.database().set_executor_tuning(ExecutorTuning{});

  // Without an index on the join key and hash joins off: nested loop.
  conn.execute_update("CREATE TABLE tags (emp_name TEXT, tag TEXT)");
  conn.execute_update("INSERT INTO tags VALUES ('ada', 'lead')");
  conn.database().set_executor_tuning(off);
  plan = explain(
      conn, "SELECT tag FROM emp e JOIN tags t ON e.name = t.emp_name");
  EXPECT_NE(plan.find("join t: nested-loop"), std::string::npos) << plan;
  conn.database().set_executor_tuning(ExecutorTuning{});
}

TEST_F(ExecTest, ExplainPlanCacheHitMissAndDdlInvalidation) {
  auto cache_line = [&](const std::string& sql) {
    auto rs = conn.execute(sql);
    std::string last;
    while (rs.next()) last = rs.get_string(1);
    return last;
  };
  const std::string q = "EXPLAIN SELECT name FROM emp WHERE dept = 1";
  EXPECT_EQ(cache_line(q), "plan-cache: miss");
  EXPECT_EQ(cache_line(q), "plan-cache: hit");

  // DDL bumps the schema epoch, invalidating every cached plan — and the
  // replan now picks up the new index.
  conn.execute_update("CREATE INDEX emp_dept ON emp (dept)");
  EXPECT_EQ(cache_line(q), "plan-cache: miss");
  std::string plan = explain(conn, "SELECT name FROM emp WHERE dept = 1");
  EXPECT_NE(plan.find("index-eq(dept)"), std::string::npos) << plan;

  const PlanCacheStats stats = conn.plan_cache_stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.invalidations, 1u);
}

TEST_F(ExecTest, PlanCacheCountsHitsAndHonorsCapacity) {
  const PlanCacheStats before = conn.plan_cache_stats();
  conn.execute("SELECT COUNT(*) FROM emp");
  conn.execute("SELECT COUNT(*) FROM emp");
  conn.execute("SELECT COUNT(*) FROM emp");
  const PlanCacheStats after = conn.plan_cache_stats();
  EXPECT_EQ(after.hits, before.hits + 2);
  EXPECT_EQ(after.misses, before.misses + 1);
  // Identical results through the cached plan.
  auto rs = conn.execute("SELECT COUNT(*) FROM emp");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 5);

  // Capacity 0 disables caching entirely.
  conn.set_plan_cache_capacity(0);
  const PlanCacheStats empty_before = conn.plan_cache_stats();
  conn.execute("SELECT COUNT(*) FROM emp");
  conn.execute("SELECT COUNT(*) FROM emp");
  const PlanCacheStats empty_after = conn.plan_cache_stats();
  EXPECT_EQ(empty_after.hits, empty_before.hits);

  // A tiny capacity evicts cold entries instead of growing unbounded.
  conn.set_plan_cache_capacity(2);
  conn.execute("SELECT 1");
  conn.execute("SELECT 2");
  conn.execute("SELECT 3");
  conn.execute("SELECT 4");
  EXPECT_GE(conn.plan_cache_stats().evictions, 2u);
}

}  // namespace
