// Profile format auto-detection and the generic loader entry point.
//
// ParaProf-style tools hand PerfDMF a path and expect it to figure out
// which translator applies (paper §3.1 "embedded translators").
#pragma once

#include <filesystem>
#include <memory>
#include <optional>

#include "io/data_source.h"

namespace perfdmf::io {

/// Sniff the format of a file or directory. Returns nullopt when nothing
/// matches.
std::optional<ProfileFormat> detect_format(const std::filesystem::path& path);

/// Construct the right DataSource for a path, sniffing when `format` is
/// not given. Throws ParseError when detection fails.
std::unique_ptr<DataSource> open_source(
    const std::filesystem::path& path,
    std::optional<ProfileFormat> format = std::nullopt);

/// Convenience: open + load.
profile::TrialData load_profile(const std::filesystem::path& path,
                                std::optional<ProfileFormat> format = std::nullopt);

}  // namespace perfdmf::io
