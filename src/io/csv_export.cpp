#include "io/csv_export.h"

#include <cstdio>

namespace perfdmf::io {

std::string csv_escape(const std::string& field, char separator) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == separator || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

namespace {
std::string fmt(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}
}  // namespace

std::string export_interval_csv(const profile::TrialData& trial,
                                const CsvOptions& options) {
  const char sep = options.separator;
  std::string out = "event";
  out += sep;
  out += "group";
  out += sep;
  out += "node";
  out += sep;
  out += "context";
  out += sep;
  out += "thread";
  out += sep;
  out += "metric";
  out += sep;
  out += "inclusive";
  out += sep;
  out += "exclusive";
  if (options.include_derived_fields) {
    out += sep;
    out += "inclusive_pct";
    out += sep;
    out += "exclusive_pct";
    out += sep;
    out += "inclusive_per_call";
  }
  out += sep;
  out += "num_calls";
  out += sep;
  out += "num_subrs";
  out += '\n';

  trial.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                              const profile::IntervalDataPoint& p) {
    const profile::ThreadId& id = trial.threads()[t];
    out += csv_escape(trial.events()[e].name, sep);
    out += sep;
    out += csv_escape(trial.events()[e].group, sep);
    out += sep;
    out += std::to_string(id.node);
    out += sep;
    out += std::to_string(id.context);
    out += sep;
    out += std::to_string(id.thread);
    out += sep;
    out += csv_escape(trial.metrics()[m].name, sep);
    out += sep;
    out += fmt(p.inclusive);
    out += sep;
    out += fmt(p.exclusive);
    if (options.include_derived_fields) {
      out += sep;
      out += fmt(p.inclusive_pct);
      out += sep;
      out += fmt(p.exclusive_pct);
      out += sep;
      out += fmt(p.inclusive_per_call);
    }
    out += sep;
    out += fmt(p.num_calls);
    out += sep;
    out += fmt(p.num_subrs);
    out += '\n';
  });
  return out;
}

std::string export_atomic_csv(const profile::TrialData& trial,
                              const CsvOptions& options) {
  const char sep = options.separator;
  std::string out = "event";
  for (const char* column : {"node", "context", "thread", "samples", "min",
                             "max", "mean", "stddev"}) {
    out += sep;
    out += column;
  }
  out += '\n';
  trial.for_each_atomic([&](std::size_t a, std::size_t t,
                            const profile::AtomicDataPoint& p) {
    const profile::ThreadId& id = trial.threads()[t];
    out += csv_escape(trial.atomic_events()[a].name, sep);
    out += sep;
    out += std::to_string(id.node);
    out += sep;
    out += std::to_string(id.context);
    out += sep;
    out += std::to_string(id.thread);
    out += sep;
    out += fmt(p.sample_count);
    out += sep;
    out += fmt(p.minimum);
    out += sep;
    out += fmt(p.maximum);
    out += sep;
    out += fmt(p.mean);
    out += sep;
    out += fmt(p.std_dev);
    out += '\n';
  });
  return out;
}

}  // namespace perfdmf::io
