// Ablation studies for the substrate design choices (DESIGN.md):
//   A1  secondary indexes on profile tables   (vs full scans)
//   A2  transaction-batched bulk loading      (vs autocommit, durable DB)
//   A3  predicate push-down through joins     (vs post-join filtering)
//   A4  prepared statements                   (vs re-parsing SQL text)
//
// Each ablation prints the same operation with the feature on and off;
// the ratios justify the choices the PerfDMF schema bakes in (FK indexes,
// bulk uploads inside one transaction, API queries as prepared joins).
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "sqldb/connection.h"
#include "util/file.h"
#include "util/timer.h"

using namespace perfdmf;
using sqldb::Connection;
using sqldb::Value;

namespace {

constexpr int kEvents = 101;
constexpr int kThreads = 256;
constexpr int kRows = kEvents * kThreads;

void fill_profile_table(Connection& conn, const char* table) {
  auto stmt = conn.prepare(std::string("INSERT INTO ") + table +
                           " (event, node, exclusive) VALUES (?, ?, ?)");
  conn.begin();
  for (int e = 0; e < kEvents; ++e) {
    for (int n = 0; n < kThreads; ++n) {
      stmt.set_int(1, e);
      stmt.set_int(2, n);
      stmt.set_double(3, 100.0 + e * 3.0 + n * 0.1);
      stmt.execute_update();
    }
  }
  conn.commit();
}

double time_queries(Connection& conn, const std::string& sql, int repeats) {
  auto stmt = conn.prepare(sql);
  util::WallTimer timer;
  for (int i = 0; i < repeats; ++i) {
    stmt.set_int(1, i % kEvents);
    auto rs = stmt.execute_query();
    (void)rs.row_count();
  }
  return timer.millis() / repeats;
}

}  // namespace

int main() {
  bench::BenchJson json("ablation");
  std::printf("ablations over a %d-row profile-shaped table\n\n", kRows);

  // ---- A1: secondary index on the query column -------------------------
  {
    Connection conn;
    conn.execute_update(
        "CREATE TABLE with_idx (id INTEGER PRIMARY KEY, event INTEGER,"
        " node INTEGER, exclusive REAL)");
    conn.execute_update(
        "CREATE TABLE no_idx (id INTEGER PRIMARY KEY, event INTEGER,"
        " node INTEGER, exclusive REAL)");
    conn.execute_update("CREATE INDEX idx_event ON with_idx (event)");
    fill_profile_table(conn, "with_idx");
    fill_profile_table(conn, "no_idx");
    const double with_index =
        time_queries(conn, "SELECT exclusive FROM with_idx WHERE event = ?", 50);
    const double without_index =
        time_queries(conn, "SELECT exclusive FROM no_idx WHERE event = ?", 50);
    std::printf("A1 event-scoped query: indexed %8.3f ms   scan %8.3f ms"
                "   (%.1fx)\n",
                with_index, without_index, without_index / with_index);
    json.set("a1_indexed_ms", with_index);
    json.set("a1_scan_ms", without_index);
    json.set("a1_index_speedup", without_index / with_index);
  }

  // ---- A2: transaction batching on a durable database ------------------
  {
    util::ScopedTempDir dir("perfdmf-ablation");
    const int batch_rows = 2000;
    double batched_ms = 0.0;
    double autocommit_ms = 0.0;
    {
      Connection conn(dir.path() / "batched");
      conn.execute_update(
          "CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER, y REAL)");
      auto stmt = conn.prepare("INSERT INTO t (x, y) VALUES (?, ?)");
      util::WallTimer timer;
      conn.begin();
      for (int i = 0; i < batch_rows; ++i) {
        stmt.set_int(1, i);
        stmt.set_double(2, i * 0.5);
        stmt.execute_update();
      }
      conn.commit();
      batched_ms = timer.millis();
    }
    {
      Connection conn(dir.path() / "autocommit");
      conn.execute_update(
          "CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER, y REAL)");
      auto stmt = conn.prepare("INSERT INTO t (x, y) VALUES (?, ?)");
      util::WallTimer timer;
      for (int i = 0; i < batch_rows; ++i) {
        stmt.set_int(1, i);
        stmt.set_double(2, i * 0.5);
        stmt.execute_update();  // one WAL append + flush per row
      }
      autocommit_ms = timer.millis();
    }
    std::printf("A2 durable load of %d rows: one txn %8.1f ms   autocommit"
                " %8.1f ms   (%.1fx)\n",
                batch_rows, batched_ms, autocommit_ms,
                autocommit_ms / batched_ms);
    json.set("a2_batched_ms", batched_ms);
    json.set("a2_autocommit_ms", autocommit_ms);
    json.set("a2_batching_speedup", autocommit_ms / batched_ms);
  }

  // ---- A3: predicate push-down through a join ---------------------------
  {
    Connection conn;
    conn.execute_update(
        "CREATE TABLE event (id INTEGER PRIMARY KEY, trial INTEGER, name TEXT)");
    conn.execute_update(
        "CREATE TABLE p (id INTEGER PRIMARY KEY, event INTEGER, node INTEGER,"
        " exclusive REAL, FOREIGN KEY (event) REFERENCES event (id))");
    {
      auto stmt = conn.prepare("INSERT INTO event (trial, name) VALUES (1, ?)");
      for (int e = 0; e < kEvents; ++e) {
        stmt.set_string(1, "routine_" + std::to_string(e));
        stmt.execute_update();
      }
      auto insert = conn.prepare(
          "INSERT INTO p (event, node, exclusive) VALUES (?, ?, ?)");
      conn.begin();
      for (int e = 1; e <= kEvents; ++e) {
        for (int n = 0; n < kThreads; ++n) {
          insert.set_int(1, e);
          insert.set_int(2, n);
          insert.set_double(3, e + n * 0.25);
          insert.execute_update();
        }
      }
      conn.commit();
    }
    // Pushed: the equality on the base table's indexed id prunes before
    // the join. Unpushed: the same logical query with the selective
    // predicate written against the joined table's column, which only
    // filters after the join materializes.
    auto pushed = conn.prepare(
        "SELECT AVG(p.exclusive) FROM event e JOIN p ON p.event = e.id"
        " WHERE e.id = ?");
    auto unpushed = conn.prepare(
        "SELECT AVG(p.exclusive) FROM event e JOIN p ON p.event = e.id"
        " WHERE p.event = ?");
    util::WallTimer timer;
    for (int i = 0; i < 20; ++i) {
      pushed.set_int(1, 1 + i % kEvents);
      auto rs = pushed.execute_query();
      (void)rs.row_count();
    }
    const double pushed_ms = timer.millis() / 20;
    timer.reset();
    for (int i = 0; i < 20; ++i) {
      unpushed.set_int(1, 1 + i % kEvents);
      auto rs = unpushed.execute_query();
      (void)rs.row_count();
    }
    const double unpushed_ms = timer.millis() / 20;
    std::printf("A3 join + selective filter: pushed-down %8.3f ms   post-join"
                " %8.3f ms   (%.1fx)\n",
                pushed_ms, unpushed_ms, unpushed_ms / pushed_ms);
    json.set("a3_pushed_ms", pushed_ms);
    json.set("a3_postjoin_ms", unpushed_ms);
    json.set("a3_pushdown_speedup", unpushed_ms / pushed_ms);
  }

  // ---- A4: prepared statements vs re-parsing ---------------------------
  {
    Connection conn;
    conn.execute_update(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER, y REAL)");
    auto insert = conn.prepare("INSERT INTO t (x, y) VALUES (?, ?)");
    for (int i = 0; i < 1000; ++i) {
      insert.set_int(1, i % 10);
      insert.set_double(2, i * 1.0);
      insert.execute_update();
    }
    const int repeats = 500;
    auto prepared = conn.prepare(
        "SELECT COUNT(*), AVG(y) FROM t WHERE x = ? AND y BETWEEN ? AND ?");
    util::WallTimer timer;
    for (int i = 0; i < repeats; ++i) {
      prepared.set_int(1, i % 10);
      prepared.set_double(2, 0.0);
      prepared.set_double(3, 500.0);
      auto rs = prepared.execute_query();
      (void)rs.row_count();
    }
    const double prepared_ms = timer.millis() / repeats;
    timer.reset();
    for (int i = 0; i < repeats; ++i) {
      auto rs = conn.execute(
          "SELECT COUNT(*), AVG(y) FROM t WHERE x = " + std::to_string(i % 10) +
          " AND y BETWEEN 0.0 AND 500.0");
      (void)rs.row_count();
    }
    const double reparsed_ms = timer.millis() / repeats;
    std::printf("A4 repeated query: prepared %8.4f ms   re-parsed %8.4f ms"
                "   (%.1fx)\n",
                prepared_ms, reparsed_ms, reparsed_ms / prepared_ms);
    json.set("a4_prepared_ms", prepared_ms);
    json.set("a4_reparsed_ms", reparsed_ms);
    json.set("a4_prepared_speedup", reparsed_ms / prepared_ms);
  }
  json.write();
  return 0;
}
