// Concurrency control for the sqldb engine.
//
// One LockManager guards one Database with two locks:
//
//  - The writer mutex serializes mutation: DML statements, transactions
//    (held from BEGIN to COMMIT/ROLLBACK), DDL, and checkpoint. One write
//    unit runs at a time, which is what lets MVCC stamp commits with a
//    single global timestamp counter.
//  - The drain lock is held SHARED by both readers and DML — they coexist,
//    readers resolving version chains against their snapshot while the
//    writer installs new versions — and EXCLUSIVE by DDL and checkpoint,
//    which rewrite rows in place or free versions and therefore must
//    drain every in-flight reader first.
//
// SELECTs take only the drain lock shared: with MVCC they never wait for
// DML, and DML never waits for them. Lock order is writer mutex before
// drain lock, always.
//
// Transactions are thread-affine: the thread that issues BEGIN owns the
// writer mutex and must issue the matching COMMIT/ROLLBACK. While a
// thread owns a transaction, all of its statements (on any connection
// to the same database) pass through without re-locking.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "sqldb/ast.h"
#include "sqldb/statement_context.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/error.h"

// ThreadSanitizer detection: gcc defines __SANITIZE_THREAD__, clang
// exposes __has_feature(thread_sanitizer).
#if defined(__SANITIZE_THREAD__)
#define PERFDMF_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PERFDMF_TSAN 1
#endif
#endif
#ifndef PERFDMF_TSAN
#define PERFDMF_TSAN 0
#endif

namespace perfdmf::sqldb {

namespace detail {
/// Shared lock-wait histogram for every LockManager in the process
/// (the registry owns it; the reference is resolved once).
inline telemetry::Histogram& lock_wait_histogram() {
  static telemetry::Histogram& h =
      telemetry::MetricsRegistry::instance().histogram("sqldb.lock.wait_micros");
  return h;
}
}  // namespace detail

/// How a statement interacts with the database locks.
enum class StatementClass {
  kRead,      // SELECT: drain lock shared, snapshot reads
  kWrite,     // DML: writer mutex + drain lock shared
  kDdl,       // DDL / checkpoint: writer mutex + drain lock exclusive
  kTxnBegin,  // BEGIN: writer mutex, held across statements
  kTxnEnd,    // COMMIT / ROLLBACK: release the transaction's lock
};

StatementClass classify_statement(const Statement& stmt);

/// Point-in-time view of one LockManager for the PERFDMF_LOCKS system
/// table. Read from relaxed atomics — each field is individually exact,
/// the set is only approximately simultaneous (fine for introspection).
struct LockStats {
  int writer_holders = 0;          // 0 or 1
  int writer_waiters = 0;
  std::uint64_t writer_wait_micros = 0;   // cumulative, contended waits only
  int drain_shared_holders = 0;
  int drain_exclusive_holders = 0;  // 0 or 1
  int drain_waiters = 0;
  std::uint64_t drain_wait_micros = 0;
};

/// Lock acquisition policy. kSerialized reproduces the pre-MVCC behaviour
/// (every statement, reads included, funnels through the writer mutex); it
/// exists so the benchmarks can measure the read-scalability win and must
/// only be switched while no statement is in flight.
enum class ConcurrencyMode {
  kSharedRead,  // snapshot readers in parallel with the writer (default)
  kSerialized,  // legacy: every statement serialized on the writer mutex
};

class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Reader access: drain lock shared. With a governed context the wait is
  /// bounded: the acquisition loop re-checks the statement's deadline and
  /// cancel flag every kWaitSlice, so a stalled DDL drain cannot hang a
  /// reader past its deadline (throws DbError{kTimeout|kCancelled}).
  void lock_shared(StatementContext* ctx = nullptr) {
    if (drain_.try_lock_shared()) {  // uncontended: skip wait timing
      drain_shared_holders_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    telemetry::PhaseTimer wait_phase(telemetry::Phase::kLockWait,
                                     &detail::lock_wait_histogram());
    WaitTracker tracker(drain_waiters_, drain_wait_micros_);
    ScopedPhaseLabel phase_label(ctx, "lock_wait");
    if (!governed(ctx)) {
      drain_.lock_shared();
    } else {
      while (!drain_shared_try_slice(wait_slice(ctx))) ctx->check_now();
    }
    drain_shared_holders_.fetch_add(1, std::memory_order_relaxed);
  }
  void unlock_shared() {
    drain_shared_holders_.fetch_sub(1, std::memory_order_relaxed);
    drain_.unlock_shared();
  }

  /// DML / transaction access: writer mutex, then drain lock shared.
  void lock_writer(StatementContext* ctx = nullptr) {
    lock_writer_mutex(ctx);
    // Cannot block: drain-exclusive holders acquire the writer mutex first,
    // so while we hold it only other shared holders touch the drain lock.
    drain_.lock_shared();
    drain_shared_holders_.fetch_add(1, std::memory_order_relaxed);
  }
  void unlock_writer() {
    drain_shared_holders_.fetch_sub(1, std::memory_order_relaxed);
    drain_.unlock_shared();
    writer_holders_.fetch_sub(1, std::memory_order_relaxed);
    writer_.unlock();
  }

  /// DDL / checkpoint access: writer mutex, then drain every reader.
  void lock_exclusive(StatementContext* ctx = nullptr) {
    lock_writer_mutex(ctx);
    try {
      if (drain_.try_lock()) {
        drain_exclusive_holders_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      telemetry::PhaseTimer wait_phase(telemetry::Phase::kLockWait,
                                       &detail::lock_wait_histogram());
      WaitTracker tracker(drain_waiters_, drain_wait_micros_);
      ScopedPhaseLabel phase_label(ctx, "lock_wait");
      if (!governed(ctx)) {
        drain_.lock();
      } else {
        while (!drain_try_slice(wait_slice(ctx))) ctx->check_now();
      }
      drain_exclusive_holders_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      writer_holders_.fetch_sub(1, std::memory_order_relaxed);
      writer_.unlock();
      throw;
    }
  }
  void unlock_exclusive() {
    drain_exclusive_holders_.fetch_sub(1, std::memory_order_relaxed);
    drain_.unlock();
    writer_holders_.fetch_sub(1, std::memory_order_relaxed);
    writer_.unlock();
  }

  /// BEGIN: take the writer lock and record the owning thread so the
  /// transaction's own statements pass through without re-locking.
  void acquire_transaction(StatementContext* ctx = nullptr) {
    lock_writer(ctx);
    txn_owner_.store(std::this_thread::get_id(), std::memory_order_release);
  }

  /// COMMIT / ROLLBACK: drop ownership and release. Must run on the thread
  /// that acquired the transaction — unlocking a mutex another thread owns
  /// is undefined behaviour, so a mismatch is rejected up front.
  void release_transaction() {
    if (txn_owner_.load(std::memory_order_acquire) !=
        std::this_thread::get_id()) {
      throw DbError(
          "transaction lock is not owned by this thread: COMMIT/ROLLBACK "
          "must run on the thread that issued BEGIN");
    }
    txn_owner_.store(std::thread::id{}, std::memory_order_release);
    unlock_writer();
  }

  bool owned_by_this_thread() const {
    return txn_owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  void set_mode(ConcurrencyMode mode) {
    mode_.store(mode, std::memory_order_relaxed);
  }
  ConcurrencyMode mode() const {
    return mode_.load(std::memory_order_relaxed);
  }

  /// Lock-free snapshot for the PERFDMF_LOCKS system table — never
  /// touches the locks themselves, so introspection cannot block or
  /// deadlock the paths it observes.
  LockStats stats() const {
    LockStats s;
    s.writer_holders = writer_holders_.load(std::memory_order_relaxed);
    s.writer_waiters = writer_waiters_.load(std::memory_order_relaxed);
    s.writer_wait_micros = writer_wait_micros_.load(std::memory_order_relaxed);
    s.drain_shared_holders =
        drain_shared_holders_.load(std::memory_order_relaxed);
    s.drain_exclusive_holders =
        drain_exclusive_holders_.load(std::memory_order_relaxed);
    s.drain_waiters = drain_waiters_.load(std::memory_order_relaxed);
    s.drain_wait_micros = drain_wait_micros_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  /// Bounded-wait slice: short enough that cancellation and timeout are
  /// observed promptly, long enough that the retry loop is cheap.
  static constexpr std::chrono::milliseconds kWaitSlice{10};

  static bool governed(const StatementContext* ctx) {
    return ctx != nullptr && (ctx->deadline.armed() || ctx->cancel != nullptr);
  }

#if PERFDMF_TSAN
  /// libtsan (through at least GCC 12) does not intercept the
  /// pthread *_clocklock calls behind try_lock_for and its shared/rwlock
  /// siblings, so a timed acquisition succeeds without the sanitizer
  /// learning the lock is held — erasing the happens-before edge and
  /// fabricating data races on everything the writer mutex protects.
  /// Under TSan, spend each wait slice polling the plain (intercepted)
  /// try_lock instead: same bounded-wait semantics, visible to the tool.
  template <typename TryFn>
  static bool poll_slice(TryFn&& try_fn, std::chrono::milliseconds slice) {
    const auto give_up = std::chrono::steady_clock::now() + slice;
    for (;;) {
      if (try_fn()) return true;
      if (std::chrono::steady_clock::now() >= give_up) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
#endif

  /// One bounded wait slice per lock flavor; non-TSan builds block on
  /// the real timed acquisition.
  bool writer_try_slice(std::chrono::milliseconds slice) {
#if PERFDMF_TSAN
    return poll_slice([this] { return writer_.try_lock(); }, slice);
#else
    return writer_.try_lock_for(slice);
#endif
  }
  bool drain_try_slice(std::chrono::milliseconds slice) {
#if PERFDMF_TSAN
    return poll_slice([this] { return drain_.try_lock(); }, slice);
#else
    return drain_.try_lock_for(slice);
#endif
  }
  bool drain_shared_try_slice(std::chrono::milliseconds slice) {
#if PERFDMF_TSAN
    return poll_slice([this] { return drain_.try_lock_shared(); }, slice);
#else
    return drain_.try_lock_shared_for(slice);
#endif
  }
  static std::chrono::milliseconds wait_slice(StatementContext* ctx) {
    const auto slice = ctx->deadline.remaining_or(kWaitSlice);
    // An already-expired deadline must deliver kTimeout immediately, not
    // after one more minimum-length sleep.
    if (slice.count() <= 0) ctx->check_now();
    return std::chrono::milliseconds(
        std::min<std::int64_t>(std::max<std::int64_t>(slice.count(), 1),
                               kWaitSlice.count()));
  }

  /// Counts a contended wait for stats(): registered as a waiter for the
  /// wait's duration, elapsed micros accumulated on exit (throw included,
  /// so a timed-out waiter doesn't leak a waiter count).
  class WaitTracker {
   public:
    WaitTracker(std::atomic<int>& waiters,
                std::atomic<std::uint64_t>& wait_micros)
        : waiters_(waiters),
          wait_micros_(wait_micros),
          start_(std::chrono::steady_clock::now()) {
      waiters_.fetch_add(1, std::memory_order_relaxed);
    }
    ~WaitTracker() {
      waiters_.fetch_sub(1, std::memory_order_relaxed);
      wait_micros_.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count()),
          std::memory_order_relaxed);
    }
    WaitTracker(const WaitTracker&) = delete;
    WaitTracker& operator=(const WaitTracker&) = delete;

   private:
    std::atomic<int>& waiters_;
    std::atomic<std::uint64_t>& wait_micros_;
    std::chrono::steady_clock::time_point start_;
  };

  void lock_writer_mutex(StatementContext* ctx) {
    if (writer_.try_lock()) {  // uncontended: skip wait timing
      writer_holders_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    telemetry::PhaseTimer wait_phase(telemetry::Phase::kLockWait,
                                     &detail::lock_wait_histogram());
    WaitTracker tracker(writer_waiters_, writer_wait_micros_);
    ScopedPhaseLabel phase_label(ctx, "lock_wait");
    if (!governed(ctx)) {
      writer_.lock();
    } else {
      while (!writer_try_slice(wait_slice(ctx))) ctx->check_now();
    }
    writer_holders_.fetch_add(1, std::memory_order_relaxed);
  }

  std::timed_mutex writer_;
  std::shared_timed_mutex drain_;
  std::atomic<std::thread::id> txn_owner_{};
  std::atomic<ConcurrencyMode> mode_{ConcurrencyMode::kSharedRead};

  // Introspection counters (see stats()).
  std::atomic<int> writer_holders_{0};
  std::atomic<int> writer_waiters_{0};
  std::atomic<std::uint64_t> writer_wait_micros_{0};
  std::atomic<int> drain_shared_holders_{0};
  std::atomic<int> drain_exclusive_holders_{0};
  std::atomic<int> drain_waiters_{0};
  std::atomic<std::uint64_t> drain_wait_micros_{0};
};

/// RAII statement-scope guard. Maps the statement class to a lock level —
/// SELECT: drain-shared (writer level when serialized), DML: writer,
/// DDL: exclusive — and takes nothing at all when the calling thread
/// already owns the database's transaction lock.
class StatementGuard {
 public:
  enum class Level { kNone, kShared, kWriter, kExclusive };

  StatementGuard(LockManager& locks, StatementClass cls,
                 StatementContext* ctx = nullptr)
      : locks_(locks) {
    if (locks_.owned_by_this_thread()) return;
    switch (cls) {
      case StatementClass::kRead:
        acquire(locks_.mode() == ConcurrencyMode::kSharedRead
                    ? Level::kShared
                    : Level::kWriter,
                ctx);
        break;
      case StatementClass::kDdl:
        acquire(Level::kExclusive, ctx);
        break;
      case StatementClass::kWrite:
      case StatementClass::kTxnBegin:
      case StatementClass::kTxnEnd:
        acquire(Level::kWriter, ctx);
        break;
    }
  }

  /// Explicit level (checkpoint wants kExclusive without being a DDL AST).
  StatementGuard(LockManager& locks, Level level,
                 StatementContext* ctx = nullptr)
      : locks_(locks) {
    if (locks_.owned_by_this_thread()) return;
    acquire(level, ctx);
  }

  /// Legacy read-only/mutating split (metadata reflection paths).
  StatementGuard(LockManager& locks, bool read_only,
                 StatementContext* ctx = nullptr)
      : StatementGuard(locks,
                       read_only ? StatementClass::kRead
                                 : StatementClass::kWrite,
                       ctx) {}

  ~StatementGuard() {
    switch (held_) {
      case Level::kNone: break;
      case Level::kShared: locks_.unlock_shared(); break;
      case Level::kWriter: locks_.unlock_writer(); break;
      case Level::kExclusive: locks_.unlock_exclusive(); break;
    }
  }

  StatementGuard(const StatementGuard&) = delete;
  StatementGuard& operator=(const StatementGuard&) = delete;

 private:
  void acquire(Level level, StatementContext* ctx) {
    switch (level) {
      case Level::kNone: break;
      case Level::kShared: locks_.lock_shared(ctx); break;
      case Level::kWriter: locks_.lock_writer(ctx); break;
      case Level::kExclusive: locks_.lock_exclusive(ctx); break;
    }
    held_ = level;
  }

  LockManager& locks_;
  Level held_ = Level::kNone;
};

}  // namespace perfdmf::sqldb
