// Streaming XML writer.
//
// PerfDMF exports profiles in a common XML representation (paper §3.1) and
// the PerfSuite psrun format is XML; this writer backs both. It produces
// indented, well-formed output and escapes all text/attribute content.
#pragma once

#include <string>
#include <vector>

namespace perfdmf::xml {

/// Escape &, <, >, ", ' for use in text nodes and attribute values.
std::string escape(std::string_view text);

class XmlWriter {
 public:
  /// `indent_width` spaces per nesting level; 0 disables pretty printing.
  explicit XmlWriter(int indent_width = 2);

  /// Emit the `<?xml ...?>` declaration. Call at most once, first.
  void declaration();

  void start_element(const std::string& name);
  /// Attributes attach to the most recently started, still-open tag.
  void attribute(const std::string& name, const std::string& value);
  void attribute(const std::string& name, long long value);
  void attribute(const std::string& name, double value);
  void text(const std::string& content);
  void end_element();

  /// Convenience: <name>content</name> on one line.
  void element_with_text(const std::string& name, const std::string& content);

  /// Finish and return the document. All elements must be closed.
  std::string str() const;

 private:
  void close_start_tag();
  void newline_indent();

  int indent_width_;
  std::string out_;
  std::vector<std::string> stack_;
  bool tag_open_ = false;        // "<name attr=..." emitted but '>' pending
  bool just_wrote_text_ = false; // suppress indentation before a close tag
};

}  // namespace perfdmf::xml
