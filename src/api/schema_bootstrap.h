// DDL bootstrap for the PerfDMF relational schema (paper §3.2).
//
// Tables: APPLICATION -> EXPERIMENT -> TRIAL -> { METRIC, INTERVAL_EVENT,
// ATOMIC_EVENT }, with INTERVAL_LOCATION_PROFILE / INTERVAL_TOTAL_SUMMARY /
// INTERVAL_MEAN_SUMMARY under INTERVAL_EVENT and ATOMIC_LOCATION_PROFILE
// under ATOMIC_EVENT.
//
// APPLICATION, EXPERIMENT and TRIAL are created with a set of default
// metadata columns, but only `id`, `name` and the foreign key are
// required by the framework — analysts may ALTER the rest freely and the
// API discovers the actual columns via DatabaseMetaData (flexible schema).
#pragma once

#include "sqldb/connection.h"

namespace perfdmf::api {

/// Create every PerfDMF table and index (IF NOT EXISTS semantics:
/// idempotent on an existing archive).
void bootstrap_schema(sqldb::Connection& connection);

/// True once bootstrap_schema() (or a compatible archive) is in place.
bool schema_present(sqldb::Connection& connection);

}  // namespace perfdmf::api
