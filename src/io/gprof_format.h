// gprof output importer (paper §3.1; Graham/Kessler/McKusick '82).
//
// Parses the textual report `gprof a.out gmon.out` prints: the flat
// profile gives exclusive ("self") seconds and call counts; the call
// graph's primary lines give inclusive time (self + children). gprof is
// a sequential profiler, so the data lands on thread 0:0:0 under the
// metric "TIME" (converted to microseconds, TAU's unit).
#pragma once

#include <filesystem>

#include "io/data_source.h"

namespace perfdmf::io {

class GprofDataSource : public DataSource {
 public:
  explicit GprofDataSource(std::filesystem::path file) : file_(std::move(file)) {}

  profile::TrialData load() override;
  ProfileFormat format() const override { return ProfileFormat::kGprof; }

  /// Parse report text directly (used by tests).
  static profile::TrialData parse(const std::string& content);

 private:
  std::filesystem::path file_;
};

/// Write a gprof-style report (flat profile + call graph) for a
/// single-threaded trial; used by the synthetic workload generator.
std::string render_gprof_report(const profile::TrialData& trial);

}  // namespace perfdmf::io
