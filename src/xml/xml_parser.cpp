#include "xml/xml_parser.h"

#include <cctype>

#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::xml {

namespace {
bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}
}  // namespace

XmlParser::XmlParser(std::string input)
    : owned_input_(std::move(input)), input_(owned_input_) {}

void XmlParser::fail(const std::string& message) const {
  throw perfdmf::ParseError("XML line " + std::to_string(line_) + ": " + message);
}

char XmlParser::cur() const {
  if (eof()) fail("unexpected end of input");
  return input_[pos_];
}

void XmlParser::advance(std::size_t n) {
  for (std::size_t i = 0; i < n && pos_ < input_.size(); ++i) {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
}

bool XmlParser::literal(std::string_view expected) {
  if (input_.substr(pos_, expected.size()) == expected) {
    advance(expected.size());
    return true;
  }
  return false;
}

void XmlParser::skip_until(std::string_view terminator, std::string_view what) {
  const std::size_t found = input_.find(terminator, pos_);
  if (found == std::string_view::npos) {
    fail("unterminated " + std::string(what));
  }
  while (pos_ < found) advance();
  advance(terminator.size());
}

std::string XmlParser::parse_name() {
  if (eof() || !is_name_start(cur())) fail("expected a name");
  const std::size_t start = pos_;
  while (!eof() && is_name_char(input_[pos_])) advance();
  return std::string(input_.substr(start, pos_ - start));
}

std::string XmlParser::decode_entities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size();) {
    if (raw[i] != '&') {
      out += raw[i++];
      continue;
    }
    const std::size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) fail("unterminated entity reference");
    const std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") out += '&';
    else if (entity == "lt") out += '<';
    else if (entity == "gt") out += '>';
    else if (entity == "quot") out += '"';
    else if (entity == "apos") out += '\'';
    else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      const std::string digits(entity.substr(1));
      char* end = nullptr;
      if (digits.size() > 1 && (digits[0] == 'x' || digits[0] == 'X')) {
        code = std::strtol(digits.c_str() + 1, &end, 16);
      } else {
        code = std::strtol(digits.c_str(), &end, 10);
      }
      if (end == nullptr || *end != '\0' || code <= 0 || code > 0x10FFFF) {
        fail("bad character reference &" + std::string(entity) + ";");
      }
      // Encode as UTF-8.
      const unsigned long cp = static_cast<unsigned long>(code);
      if (cp < 0x80) {
        out += static_cast<char>(cp);
      } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else if (cp < 0x10000) {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else {
        out += static_cast<char>(0xF0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      }
    } else {
      fail("unknown entity &" + std::string(entity) + ";");
    }
    i = semi + 1;
  }
  return out;
}

const XmlEvent& XmlParser::peek() {
  if (!have_peek_) {
    peeked_ = parse_next();
    have_peek_ = true;
  }
  return peeked_;
}

XmlEvent XmlParser::next() {
  if (have_peek_) {
    have_peek_ = false;
    return std::move(peeked_);
  }
  return parse_next();
}

XmlEvent XmlParser::parse_next() {
  if (pending_end_) {
    pending_end_ = false;
    XmlEvent event;
    event.type = XmlEventType::kEndElement;
    event.name = pending_end_name_;
    --depth_;
    return event;
  }

  for (;;) {
    if (eof()) {
      if (depth_ != 0) fail("unexpected end of document inside an element");
      XmlEvent event;
      event.type = XmlEventType::kEndDocument;
      return event;
    }

    if (cur() != '<') {
      // Character data up to the next tag.
      const std::size_t start = pos_;
      while (!eof() && cur() != '<') advance();
      std::string_view raw = input_.substr(start, pos_ - start);
      if (depth_ == 0) {
        // Whitespace between top-level constructs is insignificant.
        if (perfdmf::util::trim(raw).empty()) continue;
        fail("character data outside the root element");
      }
      std::string decoded = decode_entities(raw);
      // Handle CDATA immediately following text by coalescing on next call;
      // emit what we have (even pure whitespace inside elements).
      XmlEvent event;
      event.type = XmlEventType::kText;
      event.text = std::move(decoded);
      return event;
    }

    // A '<' construct.
    if (literal("<?")) {
      skip_until("?>", "processing instruction");
      continue;
    }
    if (literal("<!--")) {
      skip_until("-->", "comment");
      continue;
    }
    if (literal("<![CDATA[")) {
      const std::size_t end = input_.find("]]>", pos_);
      if (end == std::string_view::npos) fail("unterminated CDATA section");
      std::string_view raw = input_.substr(pos_, end - pos_);
      while (pos_ < end) advance();
      advance(3);
      if (depth_ == 0) fail("CDATA outside the root element");
      XmlEvent event;
      event.type = XmlEventType::kText;
      event.text = std::string(raw);
      if (event.text.empty()) continue;  // empty CDATA: nothing to report
      return event;
    }
    if (literal("<!")) {
      skip_until(">", "declaration");  // DOCTYPE etc. — skipped, not validated
      continue;
    }
    if (literal("</")) {
      std::string name = parse_name();
      while (!eof() && std::isspace(static_cast<unsigned char>(cur()))) advance();
      if (!literal(">")) fail("expected '>' after </" + name);
      if (depth_ == 0) fail("close tag </" + name + "> with no open element");
      --depth_;
      XmlEvent event;
      event.type = XmlEventType::kEndElement;
      event.name = std::move(name);
      return event;
    }

    // Start tag.
    advance();  // consume '<'
    XmlEvent event;
    event.type = XmlEventType::kStartElement;
    event.name = parse_name();
    for (;;) {
      while (!eof() && std::isspace(static_cast<unsigned char>(cur()))) advance();
      if (literal("/>")) {
        pending_end_ = true;
        pending_end_name_ = event.name;
        ++depth_;  // balanced by the synthetic end event
        return event;
      }
      if (literal(">")) {
        ++depth_;
        return event;
      }
      std::string attr_name = parse_name();
      while (!eof() && std::isspace(static_cast<unsigned char>(cur()))) advance();
      if (!literal("=")) fail("expected '=' after attribute " + attr_name);
      while (!eof() && std::isspace(static_cast<unsigned char>(cur()))) advance();
      const char quote = cur();
      if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
      advance();
      const std::size_t value_start = pos_;
      while (!eof() && cur() != quote) advance();
      std::string_view raw = input_.substr(value_start, pos_ - value_start);
      advance();  // closing quote
      event.attrs[attr_name] = decode_entities(raw);
    }
  }
}

void XmlParser::skip_element() {
  int depth = 1;
  while (depth > 0) {
    XmlEvent event = next();
    switch (event.type) {
      case XmlEventType::kStartElement: ++depth; break;
      case XmlEventType::kEndElement: --depth; break;
      case XmlEventType::kText: break;
      case XmlEventType::kEndDocument:
        fail("document ended while skipping an element");
    }
  }
}

void XmlParser::skip_whitespace_text() {
  while (peek().type == XmlEventType::kText &&
         perfdmf::util::trim(peek().text).empty()) {
    next();
  }
}

XmlEvent XmlParser::expect_start(const std::string& name) {
  skip_whitespace_text();
  XmlEvent event = next();
  if (event.type != XmlEventType::kStartElement || event.name != name) {
    fail("expected <" + name + ">");
  }
  return event;
}

void XmlParser::expect_end(const std::string& name) {
  skip_whitespace_text();
  XmlEvent event = next();
  if (event.type != XmlEventType::kEndElement || event.name != name) {
    fail("expected </" + name + ">");
  }
}

std::string XmlParser::read_text_until_end(const std::string& name) {
  std::string out;
  for (;;) {
    XmlEvent event = next();
    if (event.type == XmlEventType::kText) {
      out += event.text;
    } else if (event.type == XmlEventType::kEndElement && event.name == name) {
      return out;
    } else {
      fail("expected text content inside <" + name + ">");
    }
  }
}

}  // namespace perfdmf::xml
