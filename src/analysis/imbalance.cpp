#include "analysis/imbalance.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "analysis/stats.h"
#include "util/error.h"

namespace perfdmf::analysis {

std::vector<EventImbalance> compute_imbalance(const profile::TrialData& trial,
                                              const std::string& metric_name) {
  auto metric = trial.find_metric(metric_name);
  if (!metric) {
    throw InvalidArgument("no metric '" + metric_name + "' in trial");
  }
  // Per event: exclusive values across threads.
  std::map<std::size_t, std::vector<double>> values;
  trial.for_each_interval([&](std::size_t e, std::size_t, std::size_t m,
                              const profile::IntervalDataPoint& p) {
    if (m != *metric) return;
    values[e].push_back(p.exclusive);
  });

  std::vector<EventImbalance> out;
  for (const auto& [event, series] : values) {
    if (series.size() < 2) continue;
    const Descriptive d = describe(series);
    if (d.mean <= 0.0) continue;
    EventImbalance row;
    row.event_index = event;
    row.event_name = trial.events()[event].name;
    row.thread_count = d.count;
    row.mean = d.mean;
    row.maximum = d.maximum;
    row.imbalance_pct = (d.maximum / d.mean - 1.0) * 100.0;
    row.imbalance_time = d.maximum - d.mean;
    row.cov = d.std_dev / d.mean;
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const EventImbalance& a, const EventImbalance& b) {
              return a.imbalance_time > b.imbalance_time;
            });
  return out;
}

std::vector<OutlierThread> find_outlier_threads(const profile::TrialData& trial,
                                                const std::string& metric_name,
                                                double z_threshold) {
  auto metric = trial.find_metric(metric_name);
  if (!metric) {
    throw InvalidArgument("no metric '" + metric_name + "' in trial");
  }
  if (trial.threads().size() < 3) return {};

  std::vector<double> totals(trial.threads().size(), 0.0);
  trial.for_each_interval([&](std::size_t, std::size_t t, std::size_t m,
                              const profile::IntervalDataPoint& p) {
    if (m != *metric) return;
    totals[t] += p.exclusive;
  });
  const Descriptive d = describe(totals);
  if (d.std_dev <= 0.0) return {};

  std::vector<OutlierThread> out;
  for (std::size_t t = 0; t < totals.size(); ++t) {
    const double z = (totals[t] - d.mean) / d.std_dev;
    if (std::fabs(z) >= z_threshold) {
      out.push_back({trial.threads()[t], totals[t], z});
    }
  }
  std::sort(out.begin(), out.end(), [](const OutlierThread& a,
                                       const OutlierThread& b) {
    return std::fabs(a.z_score) > std::fabs(b.z_score);
  });
  return out;
}

std::string format_imbalance_table(const std::vector<EventImbalance>& rows) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-32s %8s %12s %12s %10s %8s\n", "event",
                "threads", "mean", "max", "imb%", "cov");
  out += line;
  for (const auto& row : rows) {
    std::snprintf(line, sizeof line, "%-32.32s %8zu %12.2f %12.2f %9.1f%% %8.3f\n",
                  row.event_name.c_str(), row.thread_count, row.mean, row.maximum,
                  row.imbalance_pct, row.cov);
    out += line;
  }
  return out;
}

}  // namespace perfdmf::analysis
