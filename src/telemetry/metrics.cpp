#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "util/error.h"

namespace perfdmf::telemetry {

// ------------------------------------------------------------- Histogram

std::size_t Histogram::bucket_of(std::uint64_t sample) noexcept {
  // Four geometric subdivisions per power of two: bucket index is
  // 4*floor(log2(s)) plus the position of the top two bits below the
  // leading one. Samples 0..3 get their own exact buckets.
  if (sample < 4) return static_cast<std::size_t>(sample);
  const unsigned log2 = std::bit_width(sample) - 1;  // >= 2
  const std::uint64_t sub = (sample >> (log2 - 2)) & 3;  // next two bits
  const std::size_t index = 4 * log2 + static_cast<std::size_t>(sub) - 4;
  return std::min(index, kBucketCount - 1);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index < 4) return index;
  const std::size_t log2 = (index + 4) / 4;
  const std::uint64_t sub = (index + 4) % 4;
  // Upper bound: the largest value whose top bits are (1, sub): one less
  // than the next subdivision's first value.
  return ((4 + sub + 1) << (log2 - 2)) - 1;
}

double Histogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      return static_cast<double>(bucket_upper_bound(i));
    }
  }
  return static_cast<double>(bucket_upper_bound(kBucketCount - 1));
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- registry

const char* metric_kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(std::string_view name,
                                                   MetricSample::Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case MetricSample::Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricSample::Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricSample::Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw InvalidArgument("telemetry metric '" + std::string(name) +
                          "' already registered as " +
                          metric_kind_name(it->second.kind) +
                          ", requested as " + metric_kind_name(kind));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry_for(name, MetricSample::Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry_for(name, MetricSample::Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return *entry_for(name, MetricSample::Kind::kHistogram).histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        sample.value = static_cast<double>(entry.counter->value());
        break;
      case MetricSample::Kind::kGauge:
        sample.value = static_cast<double>(entry.gauge->value());
        break;
      case MetricSample::Kind::kHistogram:
        sample.value = entry.histogram->mean();
        sample.count = static_cast<std::int64_t>(entry.histogram->count());
        sample.sum = static_cast<double>(entry.histogram->sum());
        sample.p50 = entry.histogram->percentile(0.50);
        sample.p95 = entry.histogram->percentile(0.95);
        sample.p99 = entry.histogram->percentile(0.99);
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;  // std::map iteration: already name-sorted
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricSample::Kind::kCounter: entry.counter->reset(); break;
      case MetricSample::Kind::kGauge: entry.gauge->reset(); break;
      case MetricSample::Kind::kHistogram: entry.histogram->reset(); break;
    }
  }
}

// ----------------------------------------------------------- JSON export

namespace {
void append_json_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}
}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string metrics_to_json() {
  const auto samples = MetricsRegistry::instance().snapshot();
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"kind\":\"";
    out += metric_kind_name(s.kind);
    out += "\",\"value\":";
    append_json_number(out, s.value);
    if (s.kind == MetricSample::Kind::kHistogram) {
      out += ",\"count\":" + std::to_string(s.count) + ",\"sum\":";
      append_json_number(out, s.sum);
      out += ",\"p50\":";
      append_json_number(out, s.p50);
      out += ",\"p95\":";
      append_json_number(out, s.p95);
      out += ",\"p99\":";
      append_json_number(out, s.p99);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace perfdmf::telemetry
