// Pull-style XML parser.
//
// Covers the subset the framework emits plus what the psrun importer
// needs: elements, attributes, text, comments, processing instructions,
// CDATA, and the five predefined entities plus numeric character
// references. No DTDs or namespaces-aware processing (prefixes are kept
// verbatim in names). Throws ParseError with a line number on bad input.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace perfdmf::xml {

enum class XmlEventType {
  kStartElement,
  kEndElement,
  kText,        // coalesced character data (entities decoded); never empty
  kEndDocument,
};

struct XmlEvent {
  XmlEventType type = XmlEventType::kEndDocument;
  std::string name;                          // element name for Start/End
  std::map<std::string, std::string> attrs;  // for kStartElement
  std::string text;                          // for kText
};

class XmlParser {
 public:
  /// The parser owns a copy of the input, so temporaries are safe to pass.
  explicit XmlParser(std::string input);

  /// Advance to the next event. After kEndDocument, keeps returning it.
  XmlEvent next();

  /// Peek without consuming.
  const XmlEvent& peek();

  /// Skip events until the current element (just returned as kStartElement)
  /// is closed. `depth` balancing is handled internally.
  void skip_element();

  /// Convenience for readers: require a start element with this name.
  XmlEvent expect_start(const std::string& name);
  /// Require the next event to close an element with this name.
  void expect_end(const std::string& name);
  /// Read the text content of a simple element (start already consumed);
  /// consumes up to and including the matching end tag.
  std::string read_text_until_end(const std::string& name);

  int line() const { return line_; }

 private:
  XmlEvent parse_next();
  void skip_whitespace_text();
  [[noreturn]] void fail(const std::string& message) const;
  char cur() const;
  bool eof() const { return pos_ >= input_.size(); }
  void advance(std::size_t n = 1);
  bool literal(std::string_view expected);
  void skip_until(std::string_view terminator, std::string_view what);
  std::string parse_name();
  std::string decode_entities(std::string_view raw);

  std::string owned_input_;
  std::string_view input_;  // view over owned_input_
  std::size_t pos_ = 0;
  int line_ = 1;
  int depth_ = 0;
  bool have_peek_ = false;
  XmlEvent peeked_;
  // Set while inside an empty-element tag (<a/>): the synthetic end event.
  bool pending_end_ = false;
  std::string pending_end_name_;
};

}  // namespace perfdmf::xml
