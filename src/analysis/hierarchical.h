// Agglomerative hierarchical clustering (average linkage).
//
// PerfExplorer's follow-on releases complement k-means with hierarchical
// clustering for dendrogram views ("Additional functionality is currently
// being added to PerfExplorer to perform additional data mining
// operations", paper §5.3). This implementation supports the thread
// counts the paper works with (up to ~1K rows; O(n^2) memory).
#pragma once

#include <cstddef>
#include <vector>

namespace perfdmf::analysis {

/// One merge step: nodes `a` and `b` join at `height` forming node
/// `n + step` (leaves are 0..n-1, like R's hclust / scipy's linkage).
struct MergeStep {
  std::size_t a;
  std::size_t b;
  double height;  // average inter-cluster distance at the merge
};

struct Dendrogram {
  std::size_t leaf_count = 0;
  std::vector<MergeStep> merges;  // exactly leaf_count - 1 steps

  /// Cut into k clusters: returns leaf -> cluster id (0..k-1).
  std::vector<std::size_t> cut(std::size_t k) const;
};

/// `data` row-major (rows x dims), Euclidean distance, average linkage.
/// Throws InvalidArgument on an empty matrix.
Dendrogram hierarchical_cluster(const std::vector<double>& data, std::size_t rows,
                                std::size_t dims);

}  // namespace perfdmf::analysis
