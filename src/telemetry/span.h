// Query-lifecycle spans and the trace timeline.
//
// Every sqldb statement runs under an RAII Span that accumulates a
// per-phase time breakdown (parse -> plan -> admission -> lock-wait ->
// execute -> fsync). Instrumentation sites attribute time to the current
// thread's span through PhaseTimer / add_phase_micros; the execute phase
// is derived at finish as the unattributed remainder, so the breakdown is
// disjoint and sums to the total.
//
// Statements slower than the configurable threshold (PERFDMF_SLOW_QUERY_MS
// or set_slow_query_threshold_ms) are copied into a bounded ring buffer —
// served back as the PERFDMF_SLOW_QUERIES virtual table — and logged
// through util::log with SQL text, phase breakdown, and the EXPLAIN
// access path. EXPLAIN ANALYZE forces its annotated trace into the same
// ring regardless of the threshold (force_trace()). With everything
// disarmed (the default) a span is two clock reads and a histogram
// record; SQL text is never copied.
//
// Trace timeline: with PERFDMF_TRACE=1 (or set_trace_enabled(true)) every
// span carries an id and its enclosing span's id, and finished spans,
// phases, executor operators, WAL group-commit rounds, and checkpoint/GC
// passes are recorded as complete events in a bounded in-memory
// TraceBuffer. traces_to_chrome_json() renders the buffer in Chrome
// trace-event format, loadable in chrome://tracing or Perfetto.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"

namespace perfdmf::telemetry {

enum class Phase { kParse = 0, kPlan, kAdmission, kLockWait, kExecute, kFsync };
inline constexpr std::size_t kPhaseCount = 6;

const char* phase_name(Phase phase);

/// One finished slow statement, as stored in the ring buffer and served
/// by the PERFDMF_SLOW_QUERIES system table.
struct QueryTrace {
  std::uint64_t id = 0;        // monotonic per process
  std::string started_at;      // ISO-8601 UTC
  std::string thread;          // id of the executing thread
  std::string sql;
  std::string plan;            // EXPLAIN access-path lines ('\n'-joined)
  double total_ms = 0.0;
  std::array<double, kPhaseCount> phase_ms{};
  std::string outcome = "completed";  // completed | timed_out | cancelled
};

/// Slow-query threshold in milliseconds; negative means disabled.
/// Initialized once from PERFDMF_SLOW_QUERY_MS (unset/invalid -> -1).
double slow_query_threshold_ms();
void set_slow_query_threshold_ms(double ms);

/// Bounded buffer of the most recent slow-query traces (process-global).
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  static TraceRing& instance();

  void push(QueryTrace trace);
  /// Retained traces, oldest first.
  std::vector<QueryTrace> snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const;
  /// Shrinking drops the oldest traces; capacity 0 is clamped to 1.
  void set_capacity(std::size_t n);
  void clear();

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

 private:
  TraceRing() = default;

  mutable std::mutex mutex_;
  std::vector<QueryTrace> ring_;   // chronological; rotated on overflow
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t next_id_ = 1;
};

// ------------------------------------------------------- trace timeline

/// Runtime trace switch. Initialized once from PERFDMF_TRACE (unset, "0",
/// "false", "off" -> disabled); flips at runtime via set_trace_enabled.
bool trace_enabled();
void set_trace_enabled(bool on);

/// One complete ("ph":"X") event on the trace timeline. Timestamps are
/// microseconds relative to the process trace epoch; `tid` is a small
/// per-thread ordinal. `id` is non-zero for statement spans; `parent`
/// links phases/operators to their enclosing statement span.
struct TraceEvent {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  const char* cat = "";   // static string: statement|phase|operator|wal|checkpoint
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
};

/// Bounded in-memory buffer of the most recent trace events
/// (process-global; same rotation policy as TraceRing).
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  static TraceBuffer& instance();

  void push(TraceEvent event);
  std::vector<TraceEvent> snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const;
  void set_capacity(std::size_t n);
  void clear();

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

 private:
  TraceBuffer() = default;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = kDefaultCapacity;
};

/// Record one complete event into the trace buffer. No-op unless tracing
/// is compiled in and enabled. `parent` 0 means "the calling thread's
/// current traced span, if any" — instrumentation sites (executor
/// operators, WAL group-commit rounds, checkpoint passes) never need to
/// thread span ids through explicitly.
void trace_emit(std::string name, const char* cat,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end,
                std::uint64_t parent = 0);

/// RAII lifecycle span for one statement. Construct with the SQL text
/// (borrowed — must outlive the span); destruction finishes the span.
/// At most one span per thread is current; nesting restores the outer
/// span (views executing inner statements keep attribution sane).
class Span {
 public:
  explicit Span(std::string_view sql);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The calling thread's innermost live span, or nullptr.
  static Span* current();

  bool active() const { return active_; }
  /// True when the slow-query log is armed for this span.
  bool slow_armed() const { return active_ && slow_armed_; }
  /// True when phase attribution has a consumer: the slow-query log, an
  /// EXPLAIN ANALYZE breakdown, or the trace timeline. PhaseTimer skips
  /// its clock reads entirely when this is false.
  bool armed() const {
    return active_ && (slow_armed_ || analyze_armed_ || trace_armed_);
  }
  /// True when the executor should spend the extra effort of capturing
  /// EXPLAIN output via set_plan().
  bool wants_plan() const { return slow_armed(); }
  void set_plan(std::string plan) { plan_ = std::move(plan); }

  /// EXPLAIN ANALYZE: attribute phases even without a slow threshold.
  void arm_analyze() { analyze_armed_ = active_; }
  /// Push this span's trace into the slow-query ring at finish even if it
  /// completed under the threshold (EXPLAIN ANALYZE recording).
  void force_trace() { forced_ = active_; }

  /// True when this span records onto the trace timeline.
  bool trace_armed() const { return active_ && trace_armed_; }
  std::uint64_t span_id() const { return span_id_; }

  void add_phase_micros(Phase phase, std::uint64_t micros) {
    phase_micros_[static_cast<std::size_t>(phase)] += micros;
  }

  /// Statement outcome recorded in the trace: "completed" (default),
  /// "timed_out", or "cancelled". Must be a string literal (borrowed).
  /// A killed statement's trace is pushed to the ring even when it
  /// finished under the slow threshold — a query the governor killed is
  /// exactly the one an operator wants to see.
  void set_outcome(const char* outcome) { outcome_ = outcome; }
  const char* outcome() const { return outcome_; }

 private:
  const char* outcome_ = "completed";
  std::string_view sql_;
  std::string plan_;
  std::array<std::uint64_t, kPhaseCount> phase_micros_{};
  std::chrono::steady_clock::time_point start_{};
  std::chrono::system_clock::time_point wall_start_{};
  std::int64_t threshold_micros_ = -1;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  Span* prev_ = nullptr;
  bool active_ = false;
  bool slow_armed_ = false;
  bool analyze_armed_ = false;
  bool trace_armed_ = false;
  bool forced_ = false;
};

/// Times one phase from construction to destruction, attributing the
/// elapsed microseconds to the calling thread's current span (if any)
/// and to `histogram` (if given). Traced spans additionally get a phase
/// event on the trace timeline. Inert when no sink applies.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase phase, Histogram* histogram = nullptr);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Phase phase_;
  Histogram* histogram_;
  Span* span_;
  std::chrono::steady_clock::time_point start_{};
};

/// The slow-query ring as a JSON object string:
/// {"traces":[{"id":...,"sql":...,"phases":{...}},...]}.
std::string traces_to_json();

/// The trace buffer in Chrome trace-event format:
/// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,...},...],
///  "displayTimeUnit":"ms"}. Loadable in chrome://tracing / Perfetto.
std::string traces_to_chrome_json();

}  // namespace perfdmf::telemetry
