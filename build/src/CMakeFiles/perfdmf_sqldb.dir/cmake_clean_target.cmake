file(REMOVE_RECURSE
  "libperfdmf_sqldb.a"
)
