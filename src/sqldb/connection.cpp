#include "sqldb/connection.h"

#include <cassert>

#include "sqldb/parser.h"
#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

namespace {

/// DML results are a one-cell affected-row count; unwrap it.
std::size_t update_count(const ResultSetData& result) {
  if (result.rows.size() == 1 && result.rows[0].size() == 1 &&
      result.rows[0][0].type() == ValueType::kInt) {
    return static_cast<std::size_t>(result.rows[0][0].as_int());
  }
  return result.rows.size();
}

}  // namespace

// ------------------------------------------------------------- ResultSet

ResultSet::ResultSet(ResultSetData data) : data_(std::move(data)) {}

bool ResultSet::next() {
  if (cursor_ + 1 >= static_cast<std::ptrdiff_t>(data_.rows.size())) {
    cursor_ = static_cast<std::ptrdiff_t>(data_.rows.size());
    return false;
  }
  ++cursor_;
  return true;
}

const Row& ResultSet::current() const {
  if (cursor_ < 0 || cursor_ >= static_cast<std::ptrdiff_t>(data_.rows.size())) {
    throw DbError("ResultSet cursor is not on a row (call next())");
  }
  return data_.rows[static_cast<std::size_t>(cursor_)];
}

Value ResultSet::get(std::size_t index) const {
  const Row& row = current();
  if (index < 1 || index > row.size()) {
    throw DbError("ResultSet column index " + std::to_string(index) +
                  " out of range 1.." + std::to_string(row.size()));
  }
  return row[index - 1];
}

Value ResultSet::get(const std::string& column_name) const {
  for (std::size_t i = 0; i < data_.column_names.size(); ++i) {
    if (util::iequals(data_.column_names[i], column_name)) return get(i + 1);
  }
  throw DbError("ResultSet has no column named '" + column_name + "'");
}

std::string ResultSet::get_string(std::size_t index) const {
  Value v = get(index);
  return v.is_null() ? std::string() : v.to_string();
}

std::string ResultSet::get_string(const std::string& name) const {
  Value v = get(name);
  return v.is_null() ? std::string() : v.to_string();
}

// ---------------------------------------------------- PreparedStatement

PreparedStatement::PreparedStatement(Connection& connection, std::string sql)
    : connection_(connection),
      sql_(std::move(sql)),
      statement_(parse_statement(sql_)) {
  params_.resize(statement_.placeholder_count);
}

void PreparedStatement::debug_claim_thread() {
#ifndef NDEBUG
  // Statements are thread-affine (the AST is bound in place during
  // execution); the connection mutex no longer serializes them, so a
  // statement shared across threads is a silent data race. Catch it in
  // debug builds: the first thread to bind or execute owns the statement.
  std::thread::id expected{};
  const std::thread::id self = std::this_thread::get_id();
  if (!owner_thread_.compare_exchange_strong(expected, self,
                                             std::memory_order_relaxed) &&
      expected != self) {
    assert(!"PreparedStatement used from multiple threads; "
            "share the Connection, not the statement");
  }
#endif
}

void PreparedStatement::set_value(std::size_t index, Value value) {
  debug_claim_thread();
  if (index < 1 || index > params_.size()) {
    throw DbError("bind index " + std::to_string(index) + " out of range 1.." +
                  std::to_string(params_.size()));
  }
  params_[index - 1] = std::move(value);
}

void PreparedStatement::set_int(std::size_t index, std::int64_t value) {
  set_value(index, Value(value));
}
void PreparedStatement::set_double(std::size_t index, double value) {
  set_value(index, Value(value));
}
void PreparedStatement::set_string(std::size_t index, std::string value) {
  set_value(index, Value(std::move(value)));
}
void PreparedStatement::set_null(std::size_t index) { set_value(index, Value()); }

void PreparedStatement::clear_parameters() {
  params_.assign(params_.size(), Value());
}

ResultSet PreparedStatement::execute_query() {
  debug_claim_thread();
  return ResultSet(connection_.run_statement(statement_, params_, sql_));
}

std::size_t PreparedStatement::execute_update() {
  debug_claim_thread();
  return update_count(connection_.run_statement(statement_, params_, sql_));
}

// ------------------------------------------------------ DatabaseMetaData

std::vector<std::string> DatabaseMetaData::get_tables() {
  StatementGuard guard(connection_.database().locks(), /*read_only=*/true);
  return connection_.database().table_names();
}

std::vector<std::string> DatabaseMetaData::get_views() {
  StatementGuard guard(connection_.database().locks(), /*read_only=*/true);
  return connection_.database().view_names();
}

std::vector<DatabaseMetaData::ColumnInfo> DatabaseMetaData::get_columns(
    const std::string& table) {
  StatementGuard guard(connection_.database().locks(), /*read_only=*/true);
  const Table& t = connection_.database().table(table);
  std::vector<ColumnInfo> out;
  out.reserve(t.schema().columns().size());
  for (const auto& column : t.schema().columns()) {
    out.push_back({column.name, column.type, column.not_null, column.primary_key});
  }
  return out;
}

std::vector<DatabaseMetaData::ForeignKeyInfo> DatabaseMetaData::get_foreign_keys(
    const std::string& table) {
  StatementGuard guard(connection_.database().locks(), /*read_only=*/true);
  const Table& t = connection_.database().table(table);
  std::vector<ForeignKeyInfo> out;
  for (const auto& fk : t.schema().foreign_keys()) {
    out.push_back({fk.column, fk.parent_table, fk.parent_column});
  }
  return out;
}

// ------------------------------------------------------------ Connection

Connection::Connection() : database_(std::make_shared<Database>()) {}

Connection::Connection(const std::filesystem::path& directory)
    : database_(std::make_shared<Database>(directory)) {}

Connection::Connection(const std::filesystem::path& directory,
                       const DurabilityOptions& options)
    : database_(std::make_shared<Database>(directory, options)) {}

Connection::Connection(std::shared_ptr<Database> database)
    : database_(std::move(database)) {
  if (!database_) throw InvalidArgument("Connection over a null database");
}

ResultSetData Connection::run_statement(Statement& stmt, const Params& params,
                                        std::string_view sql) {
  LockManager& locks = database_->locks();
  const StatementClass cls = classify_statement(stmt);

  if (locks.owned_by_this_thread()) {
    // Inside this thread's transaction: the exclusive lock is already
    // held, so every statement passes straight through. COMMIT/ROLLBACK
    // ends the transaction and releases (even the failure paths inside
    // Database keep the transaction closed, so release unconditionally).
    if (cls == StatementClass::kTxnEnd) {
      ResultSetData result;
      try {
        result = database_->execute(stmt, params, sql);
      } catch (...) {
        locks.release_transaction();
        throw;
      }
      locks.release_transaction();
      return result;
    }
    return database_->execute(stmt, params, sql);
  }

  if (cls == StatementClass::kTxnBegin) {
    locks.acquire_transaction();
    try {
      return database_->execute(stmt, params, sql);
    } catch (...) {
      locks.release_transaction();
      throw;
    }
  }

  // kTxnEnd without an owned transaction still locks exclusively so the
  // "COMMIT without BEGIN" diagnostic reads transaction state safely.
  StatementGuard guard(locks, cls == StatementClass::kRead);
  return database_->execute(stmt, params, sql);
}

ResultSet Connection::execute(std::string_view sql, const Params& params) {
  Statement stmt = parse_statement(sql);  // parsing needs no lock
  return ResultSet(run_statement(stmt, params, sql));
}

std::size_t Connection::execute_update(std::string_view sql, const Params& params) {
  Statement stmt = parse_statement(sql);
  return update_count(run_statement(stmt, params, sql));
}

void Connection::begin() {
  LockManager& locks = database_->locks();
  if (locks.owned_by_this_thread()) {
    database_->begin();  // reports "nested transactions are not supported"
    return;
  }
  locks.acquire_transaction();
  try {
    database_->begin();
  } catch (...) {
    locks.release_transaction();
    throw;
  }
}

void Connection::commit() {
  LockManager& locks = database_->locks();
  if (!locks.owned_by_this_thread()) {
    StatementGuard guard(locks, /*read_only=*/false);
    database_->commit();  // reports "COMMIT without BEGIN"
    return;
  }
  try {
    database_->commit();
  } catch (...) {
    locks.release_transaction();
    throw;
  }
  locks.release_transaction();
}

void Connection::rollback() {
  LockManager& locks = database_->locks();
  if (!locks.owned_by_this_thread()) {
    StatementGuard guard(locks, /*read_only=*/false);
    database_->rollback();  // reports "ROLLBACK without BEGIN"
    return;
  }
  try {
    database_->rollback();
  } catch (...) {
    locks.release_transaction();
    throw;
  }
  locks.release_transaction();
}

void Connection::checkpoint() {
  StatementGuard guard(database_->locks(), /*read_only=*/false);
  database_->checkpoint();
}

}  // namespace perfdmf::sqldb
