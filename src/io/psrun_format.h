// PerfSuite psrun importer (paper §3.1; NCSA). psrun writes one XML
// document per process in hardware-counting mode:
//
//   <hwpcreport class="PAPI" mode="count">
//     <executableinfo><name>app</name></executableinfo>
//     <machineinfo><processes>4</processes></machineinfo>
//     <processinfo><rank>0</rank></processinfo>
//     <wallclock units="seconds">12.5</wallclock>
//     <hwpceventlist>
//       <hwpcevent name="PAPI_TOT_CYC" derived="no">123456</hwpcevent>
//       ...
//     </hwpceventlist>
//   </hwpcreport>
//
// Counting mode reports whole-program totals, so the data maps onto a
// single "Entire application" event; each hwpcevent becomes a metric and
// wallclock becomes TIME (seconds -> microseconds).
#pragma once

#include <filesystem>

#include "io/data_source.h"

namespace perfdmf::io {

class PsrunDataSource : public DataSource {
 public:
  explicit PsrunDataSource(std::filesystem::path file) : file_(std::move(file)) {}

  profile::TrialData load() override;
  ProfileFormat format() const override { return ProfileFormat::kPsrun; }

  static profile::TrialData parse(const std::string& content);
  static void parse_into(const std::string& content, profile::TrialData& trial);

 private:
  std::filesystem::path file_;
};

/// Render one process's psrun XML document.
std::string render_psrun_report(const profile::TrialData& trial,
                                std::size_t thread_index);

}  // namespace perfdmf::io
