// PerfExplorer analysis server (paper §5.3, Fig. 3).
//
// "PerfExplorer is designed as a client-server system. The client makes
// requests to an analysis server back end, which is integrated with a
// performance database, using PerfDMF. … the analysis server selects the
// data of interest, gets the relevant profile data and hands it off to an
// analysis application, R. When R is done with the analysis, the results
// are saved to the database, using the PerfDMF API. … The browse requests
// are also processed by the PerfExplorer server."
//
// This module is that server: clients submit AnalysisRequests (by trial
// id), the server pulls the profile through DatabaseAPI, runs the native
// statistics engine (replacing the R process boundary), stores the result
// in the ANALYSIS_RESULT extension table, and serves browse requests.
// submit_async() runs requests on a worker pool, mirroring the detached
// back-end of the paper.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/database_api.h"
#include "util/thread_pool.h"

namespace perfdmf::explorer {

enum class AnalysisKind {
  kKMeans,        // cluster threads; params: k
  kHierarchical,  // dendrogram + cut; params: k
  kCorrelation,   // metric correlation matrix
  kPca,           // dimension reduction summary
  kDescriptive,   // per-event descriptive statistics for one metric
  kImbalance,     // per-event load imbalance + outlier threads
};

const char* analysis_kind_name(AnalysisKind kind);

struct AnalysisRequest {
  std::int64_t trial_id = -1;
  AnalysisKind kind = AnalysisKind::kDescriptive;
  std::size_t k = 3;          // clusters, for the clustering kinds
  std::string metric_name;    // kDescriptive: which metric (default: first)
  std::uint64_t seed = 99;    // determinism for k-means
};

struct AnalysisResponse {
  std::int64_t result_id = -1;  // row in ANALYSIS_RESULT
  std::string kind;
  std::string summary;   // one-line human synopsis
  std::string content;   // full rendered result (also stored in the DB)
};

class AnalysisServer {
 public:
  /// `workers` sizes the async pool (0 = synchronous submits only).
  explicit AnalysisServer(std::shared_ptr<sqldb::Connection> connection,
                          std::size_t workers = 2);
  ~AnalysisServer();
  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  /// Run the request now on the calling thread. Throws on bad requests.
  AnalysisResponse submit(const AnalysisRequest& request);

  /// Queue the request on the worker pool.
  std::future<AnalysisResponse> submit_async(const AnalysisRequest& request);

  /// Browse stored results for a trial (the client's result view).
  std::vector<api::DatabaseAPI::AnalysisResult> browse(std::int64_t trial_id);

  api::DatabaseAPI& api() { return api_; }

 private:
  AnalysisResponse run(const AnalysisRequest& request);

  api::DatabaseAPI api_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace perfdmf::explorer
