// Minimal JSON reader for the benchmark/telemetry interchange files.
//
// The framework *emits* JSON in several places (bench/bench_json.h,
// telemetry::metrics_to_json); perfguard is the first consumer, so this
// adds the matching reader: a small recursive-descent parser over the
// full JSON grammar (objects, arrays, strings with escapes, numbers,
// true/false/null). It materializes the whole document — the inputs are
// BENCH_*.json files of a few hundred bytes, not data planes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace perfdmf::util::json {

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors throw ParseError on a type mismatch (the caller is
  /// validating an external file; a mismatch is malformed input, not a
  /// programming error).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  /// Members in document order.
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parse one JSON document; trailing non-whitespace and any syntax error
/// throw perfdmf::ParseError with a byte offset.
Value parse(std::string_view text);

}  // namespace perfdmf::util::json
