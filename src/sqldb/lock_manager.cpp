#include "sqldb/lock_manager.h"

namespace perfdmf::sqldb {

StatementClass classify_statement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
    case StatementKind::kExplain:
      return StatementClass::kRead;
    case StatementKind::kBegin:
      return StatementClass::kTxnBegin;
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return StatementClass::kTxnEnd;
    case StatementKind::kInsert:
    case StatementKind::kUpdate:
    case StatementKind::kDelete:
    case StatementKind::kCreateTable:
    case StatementKind::kDropTable:
    case StatementKind::kCreateView:
    case StatementKind::kDropView:
    case StatementKind::kAlterAddColumn:
    case StatementKind::kAlterDropColumn:
    case StatementKind::kCreateIndex:
      return StatementClass::kWrite;
  }
  return StatementClass::kWrite;  // unreachable; conservative default
}

}  // namespace perfdmf::sqldb
