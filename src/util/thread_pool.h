// A small fixed-size thread pool with a parallel_for helper.
//
// PerfDMF workloads that benefit: parsing one profile file per thread of
// execution (TAU writes profile.N.C.T per thread), bulk row encoding, and
// the k-means / PCA inner loops. Determinism matters more than peak
// throughput here, so parallel_for partitions the index space statically
// and reductions are performed by the caller in index order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace perfdmf::util {

class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. Static block partitioning; exceptions from any
  /// block are rethrown (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide default pool (lazily constructed).
ThreadPool& default_pool();

}  // namespace perfdmf::util
