// Unit tests for the XML substrate (writer + pull parser).
#include <gtest/gtest.h>

#include "util/error.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace x = perfdmf::xml;

// ------------------------------------------------------------------ writer

TEST(XmlWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(x::escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(x::escape("plain"), "plain");
}

TEST(XmlWriter, EmptyElementUsesSelfClosingTag) {
  x::XmlWriter w;
  w.start_element("root");
  w.end_element();
  EXPECT_EQ(w.str(), "<root/>");
}

TEST(XmlWriter, AttributesAndText) {
  x::XmlWriter w(0);  // no pretty printing
  w.start_element("a");
  w.attribute("k", "v<1>");
  w.text("body & soul");
  w.end_element();
  EXPECT_EQ(w.str(), "<a k=\"v&lt;1&gt;\">body &amp; soul</a>");
}

TEST(XmlWriter, NumericAttributes) {
  x::XmlWriter w(0);
  w.start_element("n");
  w.attribute("i", 42LL);
  w.attribute("d", 1.5);
  w.end_element();
  EXPECT_EQ(w.str(), "<n i=\"42\" d=\"1.5\"/>");
}

TEST(XmlWriter, UnbalancedElementsThrow) {
  x::XmlWriter w;
  w.start_element("open");
  EXPECT_THROW(w.str(), perfdmf::InvalidArgument);
  w.end_element();
  EXPECT_THROW(w.end_element(), perfdmf::InvalidArgument);
}

TEST(XmlWriter, AttributeOutsideOpenTagThrows) {
  x::XmlWriter w;
  w.start_element("a");
  w.text("t");
  EXPECT_THROW(w.attribute("k", "v"), perfdmf::InvalidArgument);
}

TEST(XmlWriter, DeclarationMustComeFirst) {
  x::XmlWriter w;
  w.start_element("a");
  EXPECT_THROW(w.declaration(), perfdmf::InvalidArgument);
}

// ------------------------------------------------------------------ parser

TEST(XmlParser, ParsesElementsAttributesText) {
  x::XmlParser p("<root a=\"1\" b='two'>hi</root>");
  auto start = p.next();
  ASSERT_EQ(start.type, x::XmlEventType::kStartElement);
  EXPECT_EQ(start.name, "root");
  EXPECT_EQ(start.attrs.at("a"), "1");
  EXPECT_EQ(start.attrs.at("b"), "two");
  auto text = p.next();
  ASSERT_EQ(text.type, x::XmlEventType::kText);
  EXPECT_EQ(text.text, "hi");
  auto end = p.next();
  ASSERT_EQ(end.type, x::XmlEventType::kEndElement);
  EXPECT_EQ(end.name, "root");
  EXPECT_EQ(p.next().type, x::XmlEventType::kEndDocument);
}

TEST(XmlParser, SelfClosingElementEmitsSyntheticEnd) {
  x::XmlParser p("<a><b x=\"1\"/></a>");
  EXPECT_EQ(p.next().name, "a");
  auto b = p.next();
  EXPECT_EQ(b.type, x::XmlEventType::kStartElement);
  EXPECT_EQ(b.name, "b");
  auto b_end = p.next();
  EXPECT_EQ(b_end.type, x::XmlEventType::kEndElement);
  EXPECT_EQ(b_end.name, "b");
  EXPECT_EQ(p.next().type, x::XmlEventType::kEndElement);
}

TEST(XmlParser, DecodesEntitiesAndCharRefs) {
  x::XmlParser p("<t>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</t>");
  p.next();
  auto text = p.next();
  EXPECT_EQ(text.text, "<>&\"'AB");
}

TEST(XmlParser, DecodesEntitiesInAttributes) {
  x::XmlParser p("<t v=\"a&amp;b\"/>");
  auto start = p.next();
  EXPECT_EQ(start.attrs.at("v"), "a&b");
}

TEST(XmlParser, SkipsDeclarationCommentsAndPI) {
  x::XmlParser p(
      "<?xml version=\"1.0\"?><!-- comment --><!DOCTYPE x><root/>");
  EXPECT_EQ(p.next().name, "root");
}

TEST(XmlParser, CDataPassesThroughVerbatim) {
  x::XmlParser p("<t><![CDATA[<not & parsed>]]></t>");
  p.next();
  EXPECT_EQ(p.next().text, "<not & parsed>");
}

TEST(XmlParser, SkipElementBalancesNesting) {
  x::XmlParser p("<a><b><c/>text<d></d></b><e/></a>");
  p.next();       // <a>
  p.next();       // <b>
  p.skip_element();  // through </b>
  auto e = p.next();
  EXPECT_EQ(e.name, "e");
}

TEST(XmlParser, ExpectHelpers) {
  x::XmlParser p("<a>  <b>payload</b></a>");
  p.expect_start("a");
  p.expect_start("b");
  EXPECT_EQ(p.read_text_until_end("b"), "payload");
  p.expect_end("a");
}

TEST(XmlParser, MalformedInputThrows) {
  EXPECT_THROW(
      {
        x::XmlParser p("<a><b></a>");
        while (p.next().type != x::XmlEventType::kEndDocument) {
        }
      },
      perfdmf::ParseError);
  EXPECT_THROW(
      {
        x::XmlParser p("<a attr=novalue/>");
        p.next();
      },
      perfdmf::ParseError);
  EXPECT_THROW(
      {
        x::XmlParser p("<a>&bogus;</a>");
        p.next();
        p.next();
      },
      perfdmf::ParseError);
}

TEST(XmlParser, UnclosedElementAtEofThrows) {
  x::XmlParser p("<a><b>");
  p.next();
  p.next();
  EXPECT_THROW(p.next(), perfdmf::ParseError);
}

TEST(XmlParser, PeekDoesNotConsume) {
  x::XmlParser p("<a/>");
  EXPECT_EQ(p.peek().name, "a");
  EXPECT_EQ(p.peek().name, "a");
  EXPECT_EQ(p.next().name, "a");
}

// ------------------------------------------------------------- round trips

TEST(XmlRoundTrip, WriterOutputParsesBack) {
  x::XmlWriter w;
  w.declaration();
  w.start_element("doc");
  w.attribute("version", "1");
  for (int i = 0; i < 5; ++i) {
    w.start_element("item");
    w.attribute("id", static_cast<long long>(i));
    w.text("value " + std::to_string(i) + " <&>");
    w.end_element();
  }
  w.end_element();

  x::XmlParser p(w.str());
  auto doc = p.expect_start("doc");
  EXPECT_EQ(doc.attrs.at("version"), "1");
  for (int i = 0; i < 5; ++i) {
    auto item = p.expect_start("item");
    EXPECT_EQ(item.attrs.at("id"), std::to_string(i));
    EXPECT_EQ(p.read_text_until_end("item"),
              "value " + std::to_string(i) + " <&>");
  }
  p.expect_end("doc");
}

TEST(XmlParser, SupplementaryPlaneCharRef) {
  x::XmlParser p("<t>&#x1F600;</t>");
  p.next();
  const std::string text = p.next().text;
  ASSERT_EQ(text.size(), 4u);  // UTF-8 4-byte sequence
  EXPECT_EQ(static_cast<unsigned char>(text[0]), 0xF0);
}

TEST(XmlParser, CommentsAndPiInsideElements) {
  x::XmlParser p("<a>before<!-- note --><?pi data?>after</a>");
  p.next();
  EXPECT_EQ(p.next().text, "before");
  EXPECT_EQ(p.next().text, "after");
  EXPECT_EQ(p.next().type, x::XmlEventType::kEndElement);
}

TEST(XmlParser, MismatchedCloseTagName) {
  x::XmlParser p("<a></b>");
  p.next();
  // The parser reports the close for whatever name appears; expect_end
  // helpers are what enforce matching. Raw next() returns the event.
  auto end = p.next();
  EXPECT_EQ(end.type, x::XmlEventType::kEndElement);
  EXPECT_EQ(end.name, "b");
}

TEST(XmlParser, BadCharRefOutOfRange) {
  x::XmlParser p("<a>&#x110000;</a>");
  p.next();
  EXPECT_THROW(p.next(), perfdmf::ParseError);
}
