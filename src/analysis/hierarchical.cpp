#include "analysis/hierarchical.h"

#include <cmath>
#include <functional>
#include <limits>

#include "analysis/stats.h"
#include "util/error.h"

namespace perfdmf::analysis {

Dendrogram hierarchical_cluster(const std::vector<double>& data, std::size_t rows,
                                std::size_t dims) {
  if (rows == 0 || dims == 0 || data.size() != rows * dims) {
    throw InvalidArgument("hierarchical_cluster: bad matrix shape");
  }
  Dendrogram out;
  out.leaf_count = rows;
  if (rows == 1) return out;

  // Active cluster bookkeeping. Distance matrix updated with the
  // Lance-Williams average-linkage formula.
  const std::size_t total = 2 * rows - 1;
  std::vector<bool> active(total, false);
  std::vector<std::size_t> size(total, 0);
  for (std::size_t i = 0; i < rows; ++i) {
    active[i] = true;
    size[i] = 1;
  }
  // dist[i][j] stored in a flat triangular-ish full matrix over `total`
  // nodes; only active pairs are meaningful.
  std::vector<double> dist(total * total, 0.0);
  auto d = [&](std::size_t i, std::size_t j) -> double& {
    return dist[i * total + j];
  };
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = i + 1; j < rows; ++j) {
      const double value = std::sqrt(squared_distance(
          {data.data() + i * dims, dims}, {data.data() + j * dims, dims}));
      d(i, j) = value;
      d(j, i) = value;
    }
  }

  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < rows; ++i) alive.push_back(i);

  std::size_t next_node = rows;
  while (alive.size() > 1) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::max();
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    for (std::size_t x = 0; x < alive.size(); ++x) {
      for (std::size_t y = x + 1; y < alive.size(); ++y) {
        const double value = d(alive[x], alive[y]);
        if (value < best) {
          best = value;
          best_a = alive[x];
          best_b = alive[y];
        }
      }
    }
    // Merge into next_node.
    const std::size_t merged = next_node++;
    active[best_a] = false;
    active[best_b] = false;
    active[merged] = true;
    size[merged] = size[best_a] + size[best_b];
    out.merges.push_back({best_a, best_b, best});

    // Average linkage distances to every remaining cluster.
    for (std::size_t other : alive) {
      if (other == best_a || other == best_b) continue;
      const double wa = static_cast<double>(size[best_a]);
      const double wb = static_cast<double>(size[best_b]);
      const double value = (wa * d(best_a, other) + wb * d(best_b, other)) /
                           (wa + wb);
      d(merged, other) = value;
      d(other, merged) = value;
    }
    // Refresh the alive list.
    std::vector<std::size_t> fresh;
    for (std::size_t node : alive) {
      if (node != best_a && node != best_b) fresh.push_back(node);
    }
    fresh.push_back(merged);
    alive = std::move(fresh);
  }
  return out;
}

std::vector<std::size_t> Dendrogram::cut(std::size_t k) const {
  if (k == 0) throw InvalidArgument("cut: k must be positive");
  if (k > leaf_count) k = leaf_count;
  // Apply merges until only k clusters remain; union-find over nodes.
  const std::size_t total = 2 * leaf_count - 1;
  std::vector<std::size_t> parent(total);
  for (std::size_t i = 0; i < total; ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const std::size_t merges_to_apply =
      leaf_count - k;  // each merge reduces cluster count by one
  for (std::size_t s = 0; s < merges_to_apply && s < merges.size(); ++s) {
    const std::size_t node = leaf_count + s;
    parent[find(merges[s].a)] = find(node);
    parent[find(merges[s].b)] = find(node);
  }
  // Compact roots to 0..k-1 in first-seen order.
  std::vector<std::size_t> out(leaf_count);
  std::vector<std::size_t> roots;
  for (std::size_t leaf = 0; leaf < leaf_count; ++leaf) {
    const std::size_t root = find(leaf);
    std::size_t id = roots.size();
    for (std::size_t r = 0; r < roots.size(); ++r) {
      if (roots[r] == root) {
        id = r;
        break;
      }
    }
    if (id == roots.size()) roots.push_back(root);
    out[leaf] = id;
  }
  return out;
}

}  // namespace perfdmf::analysis
