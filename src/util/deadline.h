// A statement deadline: a point on the steady clock after which work
// should stop. Default-constructed deadlines are unarmed and never
// expire, so callers can thread one value through unconditionally and
// only pay a clock read when a timeout was actually requested.
#pragma once

#include <chrono>
#include <cstdint>

namespace perfdmf::util {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unarmed: never expires.
  Deadline() = default;

  /// Expires `ms` milliseconds from now; ms <= 0 yields an unarmed
  /// deadline (the "no timeout" configuration value).
  static Deadline after_ms(std::int64_t ms) {
    Deadline d;
    if (ms > 0) {
      d.armed_ = true;
      d.when_ = Clock::now() + std::chrono::milliseconds(ms);
    }
    return d;
  }

  bool armed() const { return armed_; }
  bool expired() const { return armed_ && Clock::now() >= when_; }
  Clock::time_point when() const { return when_; }

  /// Time left before expiry, clamped at zero; an unarmed deadline
  /// reports `fallback` (caller's own bound, e.g. a queue timeout).
  std::chrono::milliseconds remaining_or(std::chrono::milliseconds fallback) const {
    if (!armed_) return fallback;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(when_ - Clock::now());
    return left.count() < 0 ? std::chrono::milliseconds(0) : left;
  }

 private:
  bool armed_ = false;
  Clock::time_point when_{};
};

}  // namespace perfdmf::util
