// Tests for the gprof, mpiP, dynaprof, HPMToolkit, and psrun importers:
// fixed-fixture parses, synthetic round trips, error handling, detection.
#include <gtest/gtest.h>

#include "io/detect.h"
#include "io/dynaprof_format.h"
#include "io/gprof_format.h"
#include "io/hpm_format.h"
#include "io/mpip_format.h"
#include "io/psrun_format.h"
#include "io/synth.h"
#include "util/error.h"
#include "util/file.h"

using namespace perfdmf;
using namespace perfdmf::io;

// ------------------------------------------------------------------- gprof

namespace {
const char* kGprofReport =
    "Flat profile:\n"
    "\n"
    "Each sample counts as 0.01 seconds.\n"
    "  %   cumulative   self              self     total\n"
    " time   seconds   seconds    calls  ms/call  ms/call  name\n"
    " 50.00      0.02     0.02     1000     0.02     0.03  hot_function\n"
    " 30.00      0.03     0.01      500     0.02     0.02  warm_function\n"
    " 20.00      0.04     0.01                             no_call_counts\n"
    "\n"
    "\t\t     Call graph\n"
    "\n"
    "index % time    self  children    called     name\n"
    "[1]     75.0    0.02      0.01      1000   hot_function [1]\n"
    "-----------------------------------------------\n"
    "[2]     25.0    0.01      0.00       500   warm_function [2]\n";
}  // namespace

TEST(Gprof, ParsesFlatProfile) {
  auto trial = GprofDataSource::parse(kGprofReport);
  ASSERT_EQ(trial.events().size(), 3u);
  const auto hot = trial.find_event("hot_function");
  ASSERT_TRUE(hot.has_value());
  const auto* p = trial.interval_data(*hot, 0, 0);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->exclusive, 0.02 * 1e6);  // seconds -> us
  EXPECT_DOUBLE_EQ(p->num_calls, 1000.0);
}

TEST(Gprof, CallGraphSetsInclusive) {
  auto trial = GprofDataSource::parse(kGprofReport);
  const auto hot = trial.find_event("hot_function");
  const auto* p = trial.interval_data(*hot, 0, 0);
  EXPECT_DOUBLE_EQ(p->inclusive, 0.03 * 1e6);  // self + children
}

TEST(Gprof, FunctionWithoutCallCounts) {
  auto trial = GprofDataSource::parse(kGprofReport);
  const auto e = trial.find_event("no_call_counts");
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(trial.interval_data(*e, 0, 0)->num_calls, 0.0);
}

TEST(Gprof, SingleThreadOnly) {
  auto trial = GprofDataSource::parse(kGprofReport);
  EXPECT_EQ(trial.threads().size(), 1u);
  EXPECT_EQ(trial.threads()[0], (profile::ThreadId{0, 0, 0}));
}

TEST(Gprof, MissingFlatProfileThrows) {
  EXPECT_THROW(GprofDataSource::parse("no profile here"), ParseError);
}

TEST(Gprof, SyntheticRoundTrip) {
  synth::TrialSpec spec;
  spec.nodes = 1;
  spec.event_count = 8;
  auto original = synth::generate_trial(spec);

  util::ScopedTempDir dir;
  const auto file = dir.path() / "gmon.txt";
  synth::write_as_gprof(original, file);
  auto reloaded = GprofDataSource(file).load();

  // Every event with data on thread 0 must come back.
  EXPECT_EQ(reloaded.events().size(), original.events().size());
  // Exclusive times should match to report precision (1e-2 s = 1e4 us).
  const auto original_main = original.find_event("main");
  const auto reloaded_main = reloaded.find_event("main");
  ASSERT_TRUE(original_main && reloaded_main);
  EXPECT_NEAR(reloaded.interval_data(*reloaded_main, 0, 0)->exclusive,
              original.interval_data(*original_main, 0, 0)->exclusive, 1e4);
}

// -------------------------------------------------------------------- mpiP

TEST(MpiP, SyntheticRoundTrip) {
  synth::TrialSpec spec;
  spec.nodes = 4;
  spec.event_count = 6;
  auto original = synth::generate_mpip_style_trial(spec);

  util::ScopedTempDir dir;
  const auto file = dir.path() / "app.mpiP";
  synth::write_as_mpip(original, file);
  auto reloaded = MpiPDataSource(file).load();

  EXPECT_EQ(reloaded.threads().size(), 4u);
  EXPECT_EQ(reloaded.events().size(), original.events().size());
  // Application inclusive should match to %.4g precision.
  const auto app = reloaded.find_event("Application");
  ASSERT_TRUE(app.has_value());
  const auto* p = reloaded.interval_data(*app, 0, 0);
  const auto* q = original.interval_data(*original.find_event("Application"), 0, 0);
  ASSERT_NE(p, nullptr);
  EXPECT_NEAR(p->inclusive, q->inclusive, q->inclusive * 1e-3);
}

TEST(MpiP, CallsiteCallCountsSurvive) {
  synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 3;
  auto original = synth::generate_mpip_style_trial(spec);
  util::ScopedTempDir dir;
  synth::write_as_mpip(original, dir.path() / "r.mpiP");
  auto reloaded = MpiPDataSource(dir.path() / "r.mpiP").load();
  for (std::size_t e = 0; e < original.events().size(); ++e) {
    const std::string& name = original.events()[e].name;
    if (name == "Application") continue;
    auto re = reloaded.find_event(name);
    ASSERT_TRUE(re.has_value()) << name;
    EXPECT_DOUBLE_EQ(reloaded.interval_data(*re, 0, 0)->num_calls,
                     original.interval_data(e, 0, 0)->num_calls);
  }
}

TEST(MpiP, HeaderRequired) {
  EXPECT_THROW(MpiPDataSource::parse("not mpip"), ParseError);
  EXPECT_THROW(MpiPDataSource::parse("@ mpiP\nno sections"), ParseError);
}

// ---------------------------------------------------------------- dynaprof

TEST(Dynaprof, ParsesReport) {
  const char* report =
      "DynaProf 1.0 Output\n"
      "Probe: papiprobe\n"
      "Metric: PAPI_TOT_CYC\n"
      "Process: 3  Thread: 1\n"
      "\n"
      "Function Summary\n"
      "Name            Calls    Excl.       Incl.\n"
      "main                1    1000        9000\n"
      "solver             25    8000        8000\n";
  auto trial = DynaprofDataSource::parse(report);
  EXPECT_EQ(trial.metrics()[0].name, "PAPI_TOT_CYC");
  ASSERT_EQ(trial.threads().size(), 1u);
  EXPECT_EQ(trial.threads()[0], (profile::ThreadId{3, 0, 1}));
  const auto solver = trial.find_event("solver");
  ASSERT_TRUE(solver.has_value());
  EXPECT_DOUBLE_EQ(trial.interval_data(*solver, 0, 0)->num_calls, 25.0);
  EXPECT_DOUBLE_EQ(trial.interval_data(*solver, 0, 0)->exclusive, 8000.0);
}

TEST(Dynaprof, SyntheticRoundTripMultiProcess) {
  synth::TrialSpec spec;
  spec.nodes = 3;
  spec.event_count = 5;
  auto original = synth::generate_trial(spec);

  util::ScopedTempDir dir;
  synth::write_as_dynaprof(original, dir.path() / "dyn");
  // Merge the per-process reports back into one trial.
  profile::TrialData merged;
  for (const auto& file : util::list_files(dir.path() / "dyn")) {
    DynaprofDataSource::parse_into(util::read_file(file), merged);
  }
  merged.infer_dimensions();
  EXPECT_EQ(merged.threads().size(), 3u);
  EXPECT_EQ(merged.events().size(), original.events().size());
}

TEST(Dynaprof, BannerRequired) {
  EXPECT_THROW(DynaprofDataSource::parse("nope"), ParseError);
  EXPECT_THROW(DynaprofDataSource::parse("DynaProf 1.0\nno summary\n"),
               ParseError);
}

// --------------------------------------------------------------------- hpm

TEST(Hpm, ParsesSectionsCountersAndProcesses) {
  const char* report =
      "libhpm (Version 2.4.2) summary\n"
      "\n"
      "Instrumented section: 1 - Label: main - process: 2\n"
      "  file: a.f, lines: 1 <--> 10\n"
      "  Count: 3\n"
      "  Wall Clock Time: 1.5 seconds\n"
      "  Total time in user mode: 1.2 seconds\n"
      "  PM_FPU0_CMPL (FPU 0 instructions) : 12345\n"
      "  PM_INST_CMPL (Instructions completed) : 67890\n";
  auto trial = HpmDataSource::parse(report);
  ASSERT_EQ(trial.events().size(), 1u);
  EXPECT_EQ(trial.events()[0].name, "main");
  EXPECT_EQ(trial.threads()[0], (profile::ThreadId{2, 0, 0}));
  const auto time = trial.find_metric("TIME");
  ASSERT_TRUE(time.has_value());
  const auto* p = trial.interval_data(0, 0, *time);
  EXPECT_DOUBLE_EQ(p->inclusive, 1.5e6);
  EXPECT_DOUBLE_EQ(p->num_calls, 3.0);
  const auto fpu = trial.find_metric("PM_FPU0_CMPL");
  ASSERT_TRUE(fpu.has_value());
  EXPECT_DOUBLE_EQ(trial.interval_data(0, 0, *fpu)->inclusive, 12345.0);
  const auto user = trial.find_metric("USER_TIME");
  ASSERT_TRUE(user.has_value());
}

TEST(Hpm, SyntheticRoundTrip) {
  synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 4;
  spec.extra_metrics = {"PM_FPU0_CMPL", "PM_INST_CMPL"};
  auto original = synth::generate_trial(spec);

  util::ScopedTempDir dir;
  synth::write_as_hpm(original, dir.path() / "hpm");
  profile::TrialData merged;
  for (const auto& file : util::list_files(dir.path() / "hpm")) {
    HpmDataSource::parse_into(util::read_file(file), merged);
  }
  merged.infer_dimensions();
  EXPECT_EQ(merged.threads().size(), 2u);
  EXPECT_EQ(merged.events().size(), original.events().size());
  EXPECT_TRUE(merged.find_metric("PM_FPU0_CMPL").has_value());
}

TEST(Hpm, NoSectionsThrows) {
  EXPECT_THROW(HpmDataSource::parse("libhpm summary, nothing else"), ParseError);
}

// ------------------------------------------------------------------- psrun

TEST(Psrun, ParsesXmlReport) {
  const char* report =
      "<?xml version=\"1.0\"?>\n"
      "<hwpcreport class=\"PAPI\" mode=\"count\">\n"
      "  <executableinfo><name>app</name></executableinfo>\n"
      "  <processinfo><rank>5</rank></processinfo>\n"
      "  <wallclock units=\"seconds\">2.5</wallclock>\n"
      "  <hwpceventlist>\n"
      "    <hwpcevent name=\"PAPI_TOT_CYC\" derived=\"no\">1000000</hwpcevent>\n"
      "    <hwpcevent name=\"PAPI_FP_OPS\" derived=\"no\">500000</hwpcevent>\n"
      "  </hwpceventlist>\n"
      "</hwpcreport>\n";
  auto trial = PsrunDataSource::parse(report);
  EXPECT_EQ(trial.threads()[0], (profile::ThreadId{5, 0, 0}));
  ASSERT_EQ(trial.events().size(), 1u);
  const auto time = trial.find_metric("TIME");
  ASSERT_TRUE(time.has_value());
  EXPECT_DOUBLE_EQ(trial.interval_data(0, 0, *time)->inclusive, 2.5e6);
  const auto cyc = trial.find_metric("PAPI_TOT_CYC");
  ASSERT_TRUE(cyc.has_value());
  EXPECT_DOUBLE_EQ(trial.interval_data(0, 0, *cyc)->inclusive, 1e6);
}

TEST(Psrun, SyntheticRoundTripPerProcessFiles) {
  synth::TrialSpec spec;
  spec.nodes = 3;
  spec.extra_metrics = {"PAPI_TOT_CYC", "PAPI_FP_OPS"};
  auto original = synth::generate_psrun_style_trial(spec);

  util::ScopedTempDir dir;
  synth::write_as_psrun(original, dir.path() / "ps");
  profile::TrialData merged;
  for (const auto& file : util::list_files(dir.path() / "ps")) {
    PsrunDataSource::parse_into(util::read_file(file), merged);
  }
  merged.infer_dimensions();
  EXPECT_EQ(merged.threads().size(), 3u);
  EXPECT_EQ(merged.metrics().size(), 3u);  // TIME + 2 counters
}

TEST(Psrun, BadXmlThrows) {
  EXPECT_THROW(PsrunDataSource::parse("<other/>"), ParseError);
  EXPECT_THROW(PsrunDataSource::parse("<hwpcreport><rank>x</rank></hwpcreport>"),
               ParseError);
}

// --------------------------------------------------------------- detection

TEST(Detect, IdentifiesEveryFileFormat) {
  util::ScopedTempDir dir;
  util::write_file(dir.path() / "a.mpiP", "@ mpiP\n");
  util::write_file(dir.path() / "b.txt", "DynaProf 1.0 Output\n");
  util::write_file(dir.path() / "c.txt", kGprofReport);
  util::write_file(dir.path() / "d.txt", "Instrumented section: 1 - Label: x\n");
  util::write_file(dir.path() / "e.xml", "<?xml version=\"1.0\"?><hwpcreport/>");
  util::write_file(dir.path() / "f.xml", "<perfdmf_profile version=\"1\"/>");
  EXPECT_EQ(detect_format(dir.path() / "a.mpiP").value(), ProfileFormat::kMpiP);
  EXPECT_EQ(detect_format(dir.path() / "b.txt").value(),
            ProfileFormat::kDynaprof);
  EXPECT_EQ(detect_format(dir.path() / "c.txt").value(), ProfileFormat::kGprof);
  EXPECT_EQ(detect_format(dir.path() / "d.txt").value(), ProfileFormat::kHpm);
  EXPECT_EQ(detect_format(dir.path() / "e.xml").value(), ProfileFormat::kPsrun);
  EXPECT_EQ(detect_format(dir.path() / "f.xml").value(),
            ProfileFormat::kPerfDmfXml);
  EXPECT_FALSE(detect_format(dir.path()).has_value());  // dir w/o profiles
}

TEST(Detect, UnknownContentReturnsNullopt) {
  util::ScopedTempDir dir;
  util::write_file(dir.path() / "x.bin", "random content");
  EXPECT_FALSE(detect_format(dir.path() / "x.bin").has_value());
  EXPECT_THROW(load_profile(dir.path() / "x.bin"), ParseError);
}

TEST(FormatName, CoversAllFormats) {
  EXPECT_STREQ(format_name(ProfileFormat::kTau), "tau");
  EXPECT_STREQ(format_name(ProfileFormat::kGprof), "gprof");
  EXPECT_STREQ(format_name(ProfileFormat::kMpiP), "mpip");
  EXPECT_STREQ(format_name(ProfileFormat::kDynaprof), "dynaprof");
  EXPECT_STREQ(format_name(ProfileFormat::kHpm), "hpmtoolkit");
  EXPECT_STREQ(format_name(ProfileFormat::kPsrun), "psrun");
  EXPECT_STREQ(format_name(ProfileFormat::kPerfDmfXml), "perfdmf-xml");
}

TEST(MpiP, MessageSizeStatisticsRoundTrip) {
  synth::TrialSpec spec;
  spec.nodes = 3;
  spec.event_count = 4;
  spec.atomic_event_count = 1;  // enables message-size atomic events
  auto original = synth::generate_mpip_style_trial(spec);
  ASSERT_GT(original.atomic_events().size(), 0u);

  util::ScopedTempDir dir;
  synth::write_as_mpip(original, dir.path() / "m.mpiP");
  auto reloaded = MpiPDataSource(dir.path() / "m.mpiP").load();

  ASSERT_EQ(reloaded.atomic_events().size(), original.atomic_events().size());
  EXPECT_EQ(reloaded.atomic_point_count(), original.atomic_point_count());
  for (std::size_t a = 0; a < original.atomic_events().size(); ++a) {
    const std::string& name = original.atomic_events()[a].name;
    auto ra = reloaded.find_atomic_event(name);
    ASSERT_TRUE(ra.has_value()) << name;
    const auto* p = original.atomic_data(a, 0);
    const auto* q = reloaded.atomic_data(*ra, 0);
    ASSERT_NE(p, nullptr);
    ASSERT_NE(q, nullptr);
    EXPECT_DOUBLE_EQ(q->sample_count, p->sample_count);
    // %.4g rendering: values match to ~4 significant digits.
    EXPECT_NEAR(q->mean, p->mean, p->mean * 1e-3 + 1e-9);
  }
}

TEST(MpiP, MessageSizeSectionAbsentWithoutAtomicEvents) {
  synth::TrialSpec spec;
  spec.nodes = 2;
  spec.atomic_event_count = 0;
  auto trial = synth::generate_mpip_style_trial(spec);
  const std::string report = render_mpip_report(trial);
  EXPECT_EQ(report.find("Message Sent"), std::string::npos);
  auto reloaded = MpiPDataSource::parse(report);
  EXPECT_EQ(reloaded.atomic_events().size(), 0u);
}
