file(REMOVE_RECURSE
  "CMakeFiles/perfexplorer_mining.dir/perfexplorer_mining.cpp.o"
  "CMakeFiles/perfexplorer_mining.dir/perfexplorer_mining.cpp.o.d"
  "perfexplorer_mining"
  "perfexplorer_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfexplorer_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
