#include "util/thread_pool.h"

#include <algorithm>

namespace perfdmf::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
    ++in_flight_;
  }
  cv_.notify_one();
  return future;
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return in_flight_;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t blocks = std::min(n, std::max<std::size_t>(1, size() * 4));
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first block exception
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace perfdmf::util
