// perfdmf_cli: command-line front end for PerfDMF archives — the
// scriptable loader/query companion the TAU distribution ships alongside
// the framework (paper §1: PerfDMF "is included as part of TAU's
// distribution"; §7: "reusable and scriptable profile analysis").
//
// Usage:
//   perfdmf_cli <archive-dir> load <path> <app> <experiment>
//   perfdmf_cli <archive-dir> ls
//   perfdmf_cli <archive-dir> events <trial-id>
//   perfdmf_cli <archive-dir> summary <trial-id>
//   perfdmf_cli <archive-dir> export <trial-id> <out.xml>
//   perfdmf_cli <archive-dir> diff <trial-a> <trial-b>
//   perfdmf_cli <archive-dir> csv <trial-id> <out.csv>
//   perfdmf_cli <archive-dir> derive <trial-id> <metric-name> "<formula>"
//   perfdmf_cli <archive-dir> imbalance <trial-id>
//   perfdmf_cli <archive-dir> flatten <trial-id>
//   perfdmf_cli <archive-dir> rm <trial-id>
//   perfdmf_cli <archive-dir> sql "<select statement>"
//
// The archive directory is created on first use and persists (WAL +
// snapshot). `load` auto-detects the profile format.
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/algebra.h"
#include "analysis/derived_expr.h"
#include "analysis/imbalance.h"
#include "api/database_session.h"
#include "io/csv_export.h"
#include "io/detect.h"
#include "io/xml_io.h"
#include "profile/callpath.h"
#include "profile/summary.h"
#include "util/error.h"
#include "util/file.h"

using namespace perfdmf;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: perfdmf_cli <archive> "
               "{load <path> <app> <exp> | ls | events <id> | summary <id> |"
               " export <id> <file.xml> | diff <id-a> <id-b> |"
               " csv <id> <file.csv> | derive <id> <name> <formula> |"
               " imbalance <id> | flatten <id> | rm <id> | sql <stmt>}\n");
  return 2;
}

void cmd_ls(api::DatabaseSession& session) {
  for (const auto& app : session.get_application_list()) {
    std::printf("application %lld: %s\n", static_cast<long long>(app.id),
                app.name.c_str());
    session.set_application(app.id);
    for (const auto& experiment : session.get_experiment_list()) {
      std::printf("  experiment %lld: %s\n",
                  static_cast<long long>(experiment.id), experiment.name.c_str());
      session.set_experiment(experiment.id);
      for (const auto& trial : session.get_trial_list()) {
        std::printf("    trial %lld: %-24s %lld nodes x %lld x %lld\n",
                    static_cast<long long>(trial.id), trial.name.c_str(),
                    static_cast<long long>(trial.node_count),
                    static_cast<long long>(trial.contexts_per_node),
                    static_cast<long long>(trial.threads_per_context));
      }
    }
  }
}

void cmd_events(api::DatabaseSession& session, std::int64_t trial_id) {
  session.set_trial(trial_id);
  std::printf("metrics:\n");
  for (const auto& metric : session.get_metrics()) {
    std::printf("  %lld: %s%s\n", static_cast<long long>(metric.id),
                metric.name.c_str(), metric.derived ? " (derived)" : "");
  }
  std::printf("interval events:\n");
  for (const auto& event : session.get_interval_events()) {
    std::printf("  %lld: %-40s [%s]\n", static_cast<long long>(event.id),
                event.name.c_str(), event.group.c_str());
  }
  auto atomics = session.get_atomic_events();
  if (!atomics.empty()) {
    std::printf("atomic events:\n");
    for (const auto& event : atomics) {
      std::printf("  %lld: %s\n", static_cast<long long>(event.id),
                  event.name.c_str());
    }
  }
}

void cmd_summary(api::DatabaseSession& session, std::int64_t trial_id) {
  session.set_trial(trial_id);
  auto trial = session.load_selected_trial();
  auto summaries = profile::compute_interval_summaries(trial);
  std::printf("%-36s %-14s %12s %12s %10s\n", "event", "metric",
              "mean excl", "mean incl", "calls");
  for (const auto& s : summaries) {
    std::printf("%-36.36s %-14.14s %12.2f %12.2f %10.1f\n",
                trial.events()[s.event_index].name.c_str(),
                trial.metrics()[s.metric_index].name.c_str(), s.mean.exclusive,
                s.mean.inclusive, s.mean.num_calls);
  }
}

void cmd_diff(api::DatabaseSession& session, std::int64_t a, std::int64_t b) {
  session.set_trial(a);
  auto trial_a = session.load_selected_trial();
  session.set_trial(b);
  auto trial_b = session.load_selected_trial();

  auto structure = analysis::structural_diff(trial_a, trial_b);
  if (structure.identical_structure()) {
    std::printf("structure: identical\n");
  } else {
    for (const auto& name : structure.events_only_in_a) {
      std::printf("event only in %lld: %s\n", static_cast<long long>(a),
                  name.c_str());
    }
    for (const auto& name : structure.events_only_in_b) {
      std::printf("event only in %lld: %s\n", static_cast<long long>(b),
                  name.c_str());
    }
  }
  auto diff = analysis::trial_difference(trial_a, trial_b);
  auto summaries = profile::compute_interval_summaries(diff);
  std::printf("%-36s %-14s %14s\n", "event", "metric", "mean excl delta");
  for (const auto& s : summaries) {
    std::printf("%-36.36s %-14.14s %+14.2f\n",
                diff.events()[s.event_index].name.c_str(),
                diff.metrics()[s.metric_index].name.c_str(), s.mean.exclusive);
  }
}

void cmd_sql(api::DatabaseSession& session, const std::string& statement) {
  auto rs = session.api().connection().execute(statement);
  for (std::size_t c = 0; c < rs.column_count(); ++c) {
    std::printf("%s%s", c ? "\t" : "", rs.column_names()[c].c_str());
  }
  std::printf("\n");
  while (rs.next()) {
    for (std::size_t c = 1; c <= rs.column_count(); ++c) {
      std::printf("%s%s", c > 1 ? "\t" : "", rs.get_string(c).c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n", rs.row_count());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  try {
    api::DatabaseSession session{std::filesystem::path(argv[1])};
    const std::string command = argv[2];
    if (command == "load" && argc == 6) {
      auto trial = io::load_profile(argv[3]);
      if (trial.trial().name.empty()) trial.trial().name = argv[3];
      const std::int64_t id = session.save_trial(trial, argv[4], argv[5]);
      std::printf("loaded %s as trial %lld (%zu data points)\n", argv[3],
                  static_cast<long long>(id), trial.interval_point_count());
    } else if (command == "ls" && argc == 3) {
      cmd_ls(session);
    } else if (command == "events" && argc == 4) {
      cmd_events(session, std::atoll(argv[3]));
    } else if (command == "summary" && argc == 4) {
      cmd_summary(session, std::atoll(argv[3]));
    } else if (command == "export" && argc == 5) {
      session.set_trial(std::atoll(argv[3]));
      util::write_file(argv[4], io::export_xml(session.load_selected_trial()));
      std::printf("exported trial %s to %s\n", argv[3], argv[4]);
    } else if (command == "diff" && argc == 5) {
      cmd_diff(session, std::atoll(argv[3]), std::atoll(argv[4]));
    } else if (command == "csv" && argc == 5) {
      session.set_trial(std::atoll(argv[3]));
      util::write_file(argv[4],
                       io::export_interval_csv(session.load_selected_trial()));
      std::printf("exported trial %s to %s\n", argv[3], argv[4]);
    } else if (command == "derive" && argc == 6) {
      const std::int64_t id = std::atoll(argv[3]);
      session.set_trial(id);
      auto working = session.load_selected_trial();
      analysis::derive_expression(working, argv[4], argv[5]);
      session.api().save_derived_metric(id, working, argv[4]);
      std::printf("derived metric %s = %s saved to trial %lld\n", argv[4],
                  argv[5], static_cast<long long>(id));
    } else if (command == "imbalance" && argc == 4) {
      session.set_trial(std::atoll(argv[3]));
      auto trial = session.load_selected_trial();
      std::printf("%s", analysis::format_imbalance_table(
                            analysis::compute_imbalance(trial))
                            .c_str());
      auto outliers = analysis::find_outlier_threads(trial);
      for (const auto& outlier : outliers) {
        std::printf("outlier thread %s: z=%+.2f total=%.4g\n",
                    profile::to_string(outlier.thread).c_str(),
                    outlier.z_score, outlier.total);
      }
      if (outliers.empty()) std::printf("no outlier threads (|z| >= 2)\n");
    } else if (command == "flatten" && argc == 4) {
      // Aggregate a callpath trial into a new flat trial alongside it.
      const std::int64_t id = std::atoll(argv[3]);
      session.set_trial(id);
      auto trial = session.load_selected_trial();
      auto flat = profile::flatten_callpaths(trial);
      flat.trial().name = trial.trial().name + " (flat)";
      auto stored = session.api().get_trial(id);
      if (!stored) throw InvalidArgument("no trial " + std::string(argv[3]));
      const std::int64_t flat_id =
          session.api().upload_trial(flat, stored->experiment_id);
      std::printf("flattened trial %lld into new trial %lld\n",
                  static_cast<long long>(id), static_cast<long long>(flat_id));
    } else if (command == "rm" && argc == 4) {
      session.api().delete_trial(std::atoll(argv[3]));
      std::printf("deleted trial %s\n", argv[3]);
    } else if (command == "sql" && argc == 4) {
      cmd_sql(session, argv[3]);
    } else {
      return usage();
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "perfdmf_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
