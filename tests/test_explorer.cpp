// Tests for the PerfExplorer analysis server (paper §5.3, Fig. 3).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "analysis/kmeans.h"
#include "api/database_session.h"
#include "explorer/analysis_server.h"
#include "io/synth.h"
#include "util/error.h"
#include "util/strings.h"

using namespace perfdmf;
using namespace perfdmf::explorer;

namespace {

class ExplorerTest : public ::testing::Test {
 protected:
  ExplorerTest()
      : connection(std::make_shared<sqldb::Connection>()),
        server(connection, /*workers=*/2) {
    io::synth::ClusterSpec spec;
    spec.threads = 48;
    spec.cluster_count = 2;
    planted = io::synth::generate_clustered_trial(spec);
    api::DatabaseSession session(connection);
    trial_id = session.save_trial(planted.trial, "sppm", "frost");
  }

  std::shared_ptr<sqldb::Connection> connection;
  AnalysisServer server;
  io::synth::ClusteredTrial planted;
  std::int64_t trial_id = -1;
};

TEST_F(ExplorerTest, KMeansRequestRunsAndStoresResult) {
  AnalysisRequest request;
  request.trial_id = trial_id;
  request.kind = AnalysisKind::kKMeans;
  request.k = 2;
  auto response = server.submit(request);
  EXPECT_GT(response.result_id, 0);
  EXPECT_EQ(response.kind, "kmeans");
  EXPECT_NE(response.summary.find("k=2"), std::string::npos);
  EXPECT_NE(response.content.find("assignment:"), std::string::npos);

  auto results = server.browse(trial_id);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].kind, "kmeans");
  EXPECT_EQ(results[0].content, response.content);
}

TEST_F(ExplorerTest, KMeansAssignmentRecoversPlantedStructure) {
  AnalysisRequest request;
  request.trial_id = trial_id;
  request.kind = AnalysisKind::kKMeans;
  request.k = 2;
  auto response = server.submit(request);
  // Parse the stored assignment back out and score it.
  const std::size_t at = response.content.find("assignment:");
  ASSERT_NE(at, std::string::npos);
  auto fields = util::split_ws(response.content.substr(at + 11));
  std::vector<std::size_t> assignment;
  for (const auto& f : fields) {
    assignment.push_back(static_cast<std::size_t>(*util::parse_int(f)));
  }
  ASSERT_EQ(assignment.size(), planted.ground_truth.size());
  EXPECT_GT(analysis::adjusted_rand_index(assignment, planted.ground_truth),
            0.9);
}

TEST_F(ExplorerTest, EveryAnalysisKindProducesAResult) {
  for (AnalysisKind kind :
       {AnalysisKind::kKMeans, AnalysisKind::kHierarchical,
        AnalysisKind::kCorrelation, AnalysisKind::kPca,
        AnalysisKind::kDescriptive}) {
    AnalysisRequest request;
    request.trial_id = trial_id;
    request.kind = kind;
    request.k = 2;
    auto response = server.submit(request);
    EXPECT_GT(response.result_id, 0) << analysis_kind_name(kind);
    EXPECT_FALSE(response.summary.empty()) << analysis_kind_name(kind);
  }
  EXPECT_EQ(server.browse(trial_id).size(), 5u);
}

TEST_F(ExplorerTest, AsyncRequestsCompleteOnWorkers) {
  std::vector<std::future<AnalysisResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    AnalysisRequest request;
    request.trial_id = trial_id;
    request.kind = i % 2 == 0 ? AnalysisKind::kDescriptive
                              : AnalysisKind::kCorrelation;
    futures.push_back(server.submit_async(request));
  }
  for (auto& f : futures) {
    auto response = f.get();
    EXPECT_GT(response.result_id, 0);
  }
  EXPECT_EQ(server.browse(trial_id).size(), 4u);
}

TEST_F(ExplorerTest, SynchronousFallbackWithoutWorkers) {
  AnalysisServer direct(connection, /*workers=*/0);
  AnalysisRequest request;
  request.trial_id = trial_id;
  request.kind = AnalysisKind::kPca;
  auto response = direct.submit_async(request).get();
  EXPECT_GT(response.result_id, 0);
}

TEST_F(ExplorerTest, UnknownTrialRejected) {
  AnalysisRequest request;
  request.trial_id = 9999;
  EXPECT_THROW(server.submit(request), InvalidArgument);
  auto future = server.submit_async(request);
  EXPECT_THROW(future.get(), InvalidArgument);
}

TEST_F(ExplorerTest, DescriptiveWithExplicitMetric) {
  AnalysisRequest request;
  request.trial_id = trial_id;
  request.kind = AnalysisKind::kDescriptive;
  request.metric_name = "PAPI_FP_OPS";
  auto response = server.submit(request);
  EXPECT_NE(response.content.find("hydro_sweep"), std::string::npos);
  request.metric_name = "NO_SUCH_METRIC";
  EXPECT_THROW(server.submit(request), InvalidArgument);
}

TEST_F(ExplorerTest, DeterministicForSeed) {
  AnalysisRequest request;
  request.trial_id = trial_id;
  request.kind = AnalysisKind::kKMeans;
  request.k = 2;
  request.seed = 7;
  auto a = server.submit(request);
  auto b = server.submit(request);
  EXPECT_EQ(a.content, b.content);
}

}  // namespace

namespace {

TEST_F(ExplorerTest, CompletionHappensBeforeWaitIdleReturns) {
  // Regression: completion used to be published only through the future,
  // so a thread observing server state after another thread's submission
  // had no happens-before edge with the worker that ran the request.
  // wait_idle()/completed_count() now synchronize on the server's state
  // mutex, so after wait_idle() every submitted request's effects —
  // including its stored result row — must be visible.
  constexpr int kClients = 4;
  constexpr int kPerClient = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        for (int i = 0; i < kPerClient; ++i) {
          AnalysisRequest request;
          request.trial_id = trial_id;
          request.kind = c % 2 == 0 ? AnalysisKind::kDescriptive
                                    : AnalysisKind::kImbalance;
          server.submit_async(request);  // future intentionally dropped
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  server.wait_idle();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.submitted_count(),
            static_cast<std::size_t>(kClients * kPerClient));
  EXPECT_EQ(server.completed_count(), server.submitted_count());
  // Every stored result is visible from the client thread.
  EXPECT_EQ(server.browse(trial_id).size(),
            static_cast<std::size_t>(kClients * kPerClient));
}

TEST_F(ExplorerTest, ConcurrentBrowseDuringAsyncAnalysis) {
  // Browse requests come from client threads while workers are busy;
  // both sides read through their own connections under the shared lock.
  std::vector<std::future<AnalysisResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    AnalysisRequest request;
    request.trial_id = trial_id;
    request.kind = AnalysisKind::kDescriptive;
    futures.push_back(server.submit_async(request));
  }
  std::atomic<int> failures{0};
  std::thread browser([&] {
    try {
      std::size_t last = 0;
      for (int i = 0; i < 50; ++i) {
        const std::size_t n = server.browse(trial_id).size();
        if (n < last) ++failures;  // results only accumulate
        last = n;
      }
    } catch (...) {
      ++failures;
    }
  });
  for (auto& f : futures) EXPECT_GT(f.get().result_id, 0);
  browser.join();
  EXPECT_EQ(failures.load(), 0);
  server.wait_idle();
  EXPECT_EQ(server.browse(trial_id).size(), 6u);
}

TEST_F(ExplorerTest, ImbalanceAnalysisKind) {
  AnalysisRequest request;
  request.trial_id = trial_id;
  request.kind = AnalysisKind::kImbalance;
  auto response = server.submit(request);
  EXPECT_GT(response.result_id, 0);
  EXPECT_EQ(response.kind, "imbalance");
  EXPECT_NE(response.summary.find("worst_imbalance"), std::string::npos);
  EXPECT_NE(response.content.find("event"), std::string::npos);
}

}  // namespace
