# Empty dependencies file for test_io_tau.
# This may be replaced when dependencies are built.
