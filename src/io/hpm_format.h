// HPMToolkit importer (paper §3.1; IBM's Hardware Performance Monitor,
// DeRose '01). hpmcount/libhpm write one text file per process with one
// block per instrumented section:
//
//   Instrumented section: 1 - Label: main - process: 0
//     file: sppm.f, lines: 10 <--> 400
//     Count: 1
//     Wall Clock Time: 12.345 seconds
//     Total time in user mode: 11.9 seconds
//     PM_FPU0_CMPL (FPU 0 instructions) : 123456
//     PM_INST_CMPL (Instructions completed) : 7890123
//     ...
//
// Each section becomes an interval event; "Wall Clock Time" becomes the
// TIME metric (seconds -> microseconds); every "PM_*"/"PAPI_*" counter
// line becomes its own metric.
#pragma once

#include <filesystem>

#include "io/data_source.h"

namespace perfdmf::io {

class HpmDataSource : public DataSource {
 public:
  explicit HpmDataSource(std::filesystem::path file) : file_(std::move(file)) {}

  profile::TrialData load() override;
  ProfileFormat format() const override { return ProfileFormat::kHpm; }

  static profile::TrialData parse(const std::string& content);
  static void parse_into(const std::string& content, profile::TrialData& trial);

 private:
  std::filesystem::path file_;
};

/// Render one process's HPMToolkit-style report.
std::string render_hpm_report(const profile::TrialData& trial,
                              std::size_t thread_index);

}  // namespace perfdmf::io
