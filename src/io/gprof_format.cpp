#include "io/gprof_format.h"

#include <algorithm>
#include <cstdio>

#include "util/error.h"
#include "util/file.h"
#include "util/strings.h"

namespace perfdmf::io {

namespace {
constexpr double kSecondsToMicros = 1e6;
}

profile::TrialData GprofDataSource::parse(const std::string& content) {
  profile::TrialData trial;
  const std::size_t metric = trial.intern_metric("TIME");
  const std::size_t thread = trial.intern_thread({0, 0, 0});

  const auto lines = util::split_lines(content);

  // ---- flat profile ----------------------------------------------------
  // "  %   cumulative   self              self     total"
  // " time   seconds   seconds    calls  ms/call  ms/call  name"
  std::size_t i = 0;
  while (i < lines.size() && !util::starts_with(lines[i], "Flat profile:")) ++i;
  if (i == lines.size()) {
    throw perfdmf::ParseError("gprof: no 'Flat profile:' section");
  }
  while (i < lines.size() && !util::contains(lines[i], "name")) ++i;
  ++i;  // past the header line
  for (; i < lines.size(); ++i) {
    const std::string line = std::string(util::trim(lines[i]));
    if (line.empty()) break;  // blank line ends the flat profile
    // Columns: %time cumulative self [calls [self-ms/call total-ms/call]] name
    auto fields = util::split_ws(line);
    if (fields.size() < 4) continue;
    profile::IntervalDataPoint point;
    point.exclusive =
        util::parse_double_or_throw(fields[2], "gprof self seconds") *
        kSecondsToMicros;
    std::size_t name_start = 3;
    if (auto calls = util::parse_double(fields[3])) {
      point.num_calls = *calls;
      name_start = 4;
      // Optional ms/call columns.
      if (fields.size() > 5 && util::parse_double(fields[4]) &&
          util::parse_double(fields[5])) {
        name_start = 6;
      }
    } else {
      point.num_calls = 0.0;  // functions sampled but never counted
    }
    if (name_start >= fields.size()) {
      throw perfdmf::ParseError("gprof: flat profile line without name: " + line);
    }
    std::vector<std::string> name_parts(fields.begin() + name_start, fields.end());
    const std::string name = util::join(name_parts, " ");
    // Without the call graph, inclusive defaults to exclusive.
    point.inclusive = point.exclusive;
    const std::size_t event = trial.intern_event(name);
    trial.set_interval_data(event, thread, metric, point);
  }

  // ---- call graph (optional) -------------------------------------------
  // Primary lines: "[3]   57.1    0.01    0.03    2016   qsort [3]"
  // inclusive = self + children.
  while (i < lines.size() && !util::contains(lines[i], "Call graph")) ++i;
  for (; i < lines.size(); ++i) {
    const std::string line = std::string(util::trim(lines[i]));
    if (line.empty() || line[0] != '[') continue;
    auto fields = util::split_ws(line);
    // [index] %time self children called name [index]
    if (fields.size() < 6) continue;
    auto self = util::parse_double(fields[2]);
    auto children = util::parse_double(fields[3]);
    if (!self || !children) continue;
    // The name runs from field 5 (after `called`) up to the trailing [n].
    std::size_t name_start = 5;
    std::size_t name_end = fields.size();
    if (name_end > name_start && fields.back().front() == '[') --name_end;
    if (name_start >= name_end) continue;
    std::vector<std::string> name_parts(fields.begin() + name_start,
                                        fields.begin() + name_end);
    const std::string name = util::join(name_parts, " ");
    auto event = trial.find_event(name);
    if (!event) continue;  // cycle members etc.
    const profile::IntervalDataPoint* existing =
        trial.interval_data(*event, thread, metric);
    if (existing == nullptr) continue;
    profile::IntervalDataPoint point = *existing;
    point.inclusive = (*self + *children) * kSecondsToMicros;
    trial.set_interval_data(*event, thread, metric, point);
  }

  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

profile::TrialData GprofDataSource::load() {
  profile::TrialData trial = parse(util::read_file(file_));
  trial.trial().name = file_.filename().string();
  return trial;
}

std::string render_gprof_report(const profile::TrialData& trial) {
  auto metric = trial.find_metric("TIME");
  if (!metric) throw perfdmf::InvalidArgument("gprof writer needs a TIME metric");
  auto thread = trial.find_thread({0, 0, 0});
  if (!thread) throw perfdmf::InvalidArgument("gprof writer needs thread 0:0:0");

  // Gather events with data and compute the total for %time.
  struct Entry {
    std::string name;
    profile::IntervalDataPoint point;
  };
  std::vector<Entry> entries;
  double total_self = 0.0;
  for (std::size_t e = 0; e < trial.events().size(); ++e) {
    const profile::IntervalDataPoint* p = trial.interval_data(e, *thread, *metric);
    if (p == nullptr) continue;
    entries.push_back({trial.events()[e].name, *p});
    total_self += p->exclusive;
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.point.exclusive > b.point.exclusive;
  });

  std::string out = "Flat profile:\n\n";
  out += "Each sample counts as 0.01 seconds.\n";
  out += "  %   cumulative   self              self     total\n";
  out += " time   seconds   seconds    calls  ms/call  ms/call  name\n";
  double cumulative = 0.0;
  for (const auto& entry : entries) {
    const double self_seconds = entry.point.exclusive / kSecondsToMicros;
    cumulative += self_seconds;
    const double pct = total_self > 0.0
                           ? 100.0 * entry.point.exclusive / total_self
                           : 0.0;
    const double per_call_ms = entry.point.num_calls > 0.0
                                   ? self_seconds * 1e3 / entry.point.num_calls
                                   : 0.0;
    const double total_ms = entry.point.num_calls > 0.0
                                ? entry.point.inclusive / 1e3 / entry.point.num_calls
                                : 0.0;
    char line[512];
    std::snprintf(line, sizeof line,
                  "%6.2f %10.2f %9.2f %8.0f %8.2f %8.2f  %s\n", pct, cumulative,
                  self_seconds, entry.point.num_calls, per_call_ms, total_ms,
                  entry.name.c_str());
    out += line;
  }
  out += "\n";

  // Call graph with primary lines only (enough to recover inclusive time).
  out += "\t\t     Call graph (explanation follows)\n\n";
  out += "granularity: each sample hit covers 2 byte(s) for 0.01% of total\n\n";
  out += "index % time    self  children    called     name\n";
  const double total_inclusive =
      total_self > 0.0 ? total_self / kSecondsToMicros : 1.0;
  int index = 1;
  for (const auto& entry : entries) {
    const double self_seconds = entry.point.exclusive / kSecondsToMicros;
    const double children_seconds =
        (entry.point.inclusive - entry.point.exclusive) / kSecondsToMicros;
    const double pct =
        100.0 * (entry.point.inclusive / kSecondsToMicros) / total_inclusive;
    char line[512];
    std::snprintf(line, sizeof line, "[%d] %7.1f %7.2f %9.2f %9.0f   %s [%d]\n",
                  index, pct, self_seconds,
                  children_seconds < 0.0 ? 0.0 : children_seconds,
                  entry.point.num_calls, entry.name.c_str(), index);
    out += line;
    out += "-----------------------------------------------\n";
    ++index;
  }
  return out;
}

}  // namespace perfdmf::io
