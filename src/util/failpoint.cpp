#include "util/failpoint.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::util::failpoint {

namespace {

struct Spec {
  FailAction action;
  int countdown;  // fires when a hit decrements this to zero
  int arg;
};

std::mutex g_mutex;
std::map<std::string, Spec>& registry() {
  static std::map<std::string, Spec> map;
  return map;
}
// Fast path: sites on hot paths (every WAL append) pay one relaxed load
// when nothing is armed.
std::atomic<int> g_armed{0};
std::once_flag g_env_once;

FailAction parse_action(const std::string& word) {
  if (word == "error") return FailAction::kError;
  if (word == "short" || word == "shortwrite") return FailAction::kShortWrite;
  if (word == "abort") return FailAction::kAbort;
  if (word == "delay") return FailAction::kDelay;
  throw InvalidArgument("unknown failpoint action: " + word);
}

void load_from_env() {
  const char* env = std::getenv("PERFDMF_FAILPOINTS");
  if (!env || !*env) return;
  for (const auto& entry : split(env, ';')) {
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("PERFDMF_FAILPOINTS entry missing '=': " + entry);
    }
    const std::string name = entry.substr(0, eq);
    const auto fields = split(entry.substr(eq + 1), ':');
    if (fields.empty() || fields[0].empty()) {
      throw InvalidArgument("PERFDMF_FAILPOINTS entry missing action: " + entry);
    }
    const FailAction action = parse_action(fields[0]);
    const int countdown =
        fields.size() > 1
            ? static_cast<int>(parse_int_or_throw(fields[1], "failpoint countdown"))
            : 1;
    const int arg =
        fields.size() > 2
            ? static_cast<int>(parse_int_or_throw(fields[2], "failpoint arg"))
            : 0;
    enable(name, action, countdown, arg);
  }
}

}  // namespace

void enable(const std::string& name, FailAction action, int countdown, int arg) {
  if (countdown < 1) throw InvalidArgument("failpoint countdown must be >= 1");
  std::lock_guard<std::mutex> lock(g_mutex);
  auto [it, inserted] = registry().insert_or_assign(name, Spec{action, countdown, arg});
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (registry().erase(name) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void clear_all() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed.fetch_sub(static_cast<int>(registry().size()),
                    std::memory_order_relaxed);
  registry().clear();
}

std::optional<FailpointHit> hit(const char* name) {
  std::call_once(g_env_once, load_from_env);
  if (g_armed.load(std::memory_order_relaxed) == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = registry().find(name);
  if (it == registry().end()) return std::nullopt;
  if (--it->second.countdown > 0) return std::nullopt;
  FailpointHit fired{it->second.action, it->second.arg};
  registry().erase(it);  // one-shot
  g_armed.fetch_sub(1, std::memory_order_relaxed);
  return fired;
}

std::optional<FailpointHit> evaluate(const char* name) {
  auto fired = hit(name);
  if (!fired) return std::nullopt;
  switch (fired->action) {
    case FailAction::kError:
      throw IoError(std::string("injected failure at failpoint ") + name);
    case FailAction::kAbort:
      ::_exit(kCrashExitCode);  // simulated crash: no destructors, no flush
    case FailAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fired->arg));
      return std::nullopt;
    case FailAction::kShortWrite:
      return fired;  // the IO site applies the partial write, then dies
  }
  return std::nullopt;
}

}  // namespace perfdmf::util::failpoint
