// Concurrency control for the sqldb engine.
//
// One LockManager guards one Database with two locks:
//
//  - The writer mutex serializes mutation: DML statements, transactions
//    (held from BEGIN to COMMIT/ROLLBACK), DDL, and checkpoint. One write
//    unit runs at a time, which is what lets MVCC stamp commits with a
//    single global timestamp counter.
//  - The drain lock is held SHARED by both readers and DML — they coexist,
//    readers resolving version chains against their snapshot while the
//    writer installs new versions — and EXCLUSIVE by DDL and checkpoint,
//    which rewrite rows in place or free versions and therefore must
//    drain every in-flight reader first.
//
// SELECTs take only the drain lock shared: with MVCC they never wait for
// DML, and DML never waits for them. Lock order is writer mutex before
// drain lock, always.
//
// Transactions are thread-affine: the thread that issues BEGIN owns the
// writer mutex and must issue the matching COMMIT/ROLLBACK. While a
// thread owns a transaction, all of its statements (on any connection
// to the same database) pass through without re-locking.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "sqldb/ast.h"
#include "sqldb/statement_context.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/error.h"

namespace perfdmf::sqldb {

namespace detail {
/// Shared lock-wait histogram for every LockManager in the process
/// (the registry owns it; the reference is resolved once).
inline telemetry::Histogram& lock_wait_histogram() {
  static telemetry::Histogram& h =
      telemetry::MetricsRegistry::instance().histogram("sqldb.lock.wait_micros");
  return h;
}
}  // namespace detail

/// How a statement interacts with the database locks.
enum class StatementClass {
  kRead,      // SELECT: drain lock shared, snapshot reads
  kWrite,     // DML: writer mutex + drain lock shared
  kDdl,       // DDL / checkpoint: writer mutex + drain lock exclusive
  kTxnBegin,  // BEGIN: writer mutex, held across statements
  kTxnEnd,    // COMMIT / ROLLBACK: release the transaction's lock
};

StatementClass classify_statement(const Statement& stmt);

/// Lock acquisition policy. kSerialized reproduces the pre-MVCC behaviour
/// (every statement, reads included, funnels through the writer mutex); it
/// exists so the benchmarks can measure the read-scalability win and must
/// only be switched while no statement is in flight.
enum class ConcurrencyMode {
  kSharedRead,  // snapshot readers in parallel with the writer (default)
  kSerialized,  // legacy: every statement serialized on the writer mutex
};

class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Reader access: drain lock shared. With a governed context the wait is
  /// bounded: the acquisition loop re-checks the statement's deadline and
  /// cancel flag every kWaitSlice, so a stalled DDL drain cannot hang a
  /// reader past its deadline (throws DbError{kTimeout|kCancelled}).
  void lock_shared(StatementContext* ctx = nullptr) {
    if (drain_.try_lock_shared()) return;  // uncontended: skip wait timing
    telemetry::PhaseTimer wait_phase(telemetry::Phase::kLockWait,
                                     &detail::lock_wait_histogram());
    if (!governed(ctx)) {
      drain_.lock_shared();
      return;
    }
    while (!drain_.try_lock_shared_for(wait_slice(ctx))) ctx->check_now();
  }
  void unlock_shared() { drain_.unlock_shared(); }

  /// DML / transaction access: writer mutex, then drain lock shared.
  void lock_writer(StatementContext* ctx = nullptr) {
    lock_writer_mutex(ctx);
    // Cannot block: drain-exclusive holders acquire the writer mutex first,
    // so while we hold it only other shared holders touch the drain lock.
    drain_.lock_shared();
  }
  void unlock_writer() {
    drain_.unlock_shared();
    writer_.unlock();
  }

  /// DDL / checkpoint access: writer mutex, then drain every reader.
  void lock_exclusive(StatementContext* ctx = nullptr) {
    lock_writer_mutex(ctx);
    try {
      if (drain_.try_lock()) return;
      telemetry::PhaseTimer wait_phase(telemetry::Phase::kLockWait,
                                       &detail::lock_wait_histogram());
      if (!governed(ctx)) {
        drain_.lock();
        return;
      }
      while (!drain_.try_lock_for(wait_slice(ctx))) ctx->check_now();
    } catch (...) {
      writer_.unlock();
      throw;
    }
  }
  void unlock_exclusive() {
    drain_.unlock();
    writer_.unlock();
  }

  /// BEGIN: take the writer lock and record the owning thread so the
  /// transaction's own statements pass through without re-locking.
  void acquire_transaction(StatementContext* ctx = nullptr) {
    lock_writer(ctx);
    txn_owner_.store(std::this_thread::get_id(), std::memory_order_release);
  }

  /// COMMIT / ROLLBACK: drop ownership and release. Must run on the thread
  /// that acquired the transaction — unlocking a mutex another thread owns
  /// is undefined behaviour, so a mismatch is rejected up front.
  void release_transaction() {
    if (txn_owner_.load(std::memory_order_acquire) !=
        std::this_thread::get_id()) {
      throw DbError(
          "transaction lock is not owned by this thread: COMMIT/ROLLBACK "
          "must run on the thread that issued BEGIN");
    }
    txn_owner_.store(std::thread::id{}, std::memory_order_release);
    unlock_writer();
  }

  bool owned_by_this_thread() const {
    return txn_owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  void set_mode(ConcurrencyMode mode) {
    mode_.store(mode, std::memory_order_relaxed);
  }
  ConcurrencyMode mode() const {
    return mode_.load(std::memory_order_relaxed);
  }

 private:
  /// Bounded-wait slice: short enough that cancellation and timeout are
  /// observed promptly, long enough that the retry loop is cheap.
  static constexpr std::chrono::milliseconds kWaitSlice{10};

  static bool governed(const StatementContext* ctx) {
    return ctx != nullptr && (ctx->deadline.armed() || ctx->cancel != nullptr);
  }
  static std::chrono::milliseconds wait_slice(StatementContext* ctx) {
    const auto slice = ctx->deadline.remaining_or(kWaitSlice);
    // An already-expired deadline must deliver kTimeout immediately, not
    // after one more minimum-length sleep.
    if (slice.count() <= 0) ctx->check_now();
    return std::chrono::milliseconds(
        std::min<std::int64_t>(std::max<std::int64_t>(slice.count(), 1),
                               kWaitSlice.count()));
  }

  void lock_writer_mutex(StatementContext* ctx) {
    if (writer_.try_lock()) return;  // uncontended: skip wait timing
    telemetry::PhaseTimer wait_phase(telemetry::Phase::kLockWait,
                                     &detail::lock_wait_histogram());
    if (!governed(ctx)) {
      writer_.lock();
      return;
    }
    while (!writer_.try_lock_for(wait_slice(ctx))) ctx->check_now();
  }

  std::timed_mutex writer_;
  std::shared_timed_mutex drain_;
  std::atomic<std::thread::id> txn_owner_{};
  std::atomic<ConcurrencyMode> mode_{ConcurrencyMode::kSharedRead};
};

/// RAII statement-scope guard. Maps the statement class to a lock level —
/// SELECT: drain-shared (writer level when serialized), DML: writer,
/// DDL: exclusive — and takes nothing at all when the calling thread
/// already owns the database's transaction lock.
class StatementGuard {
 public:
  enum class Level { kNone, kShared, kWriter, kExclusive };

  StatementGuard(LockManager& locks, StatementClass cls,
                 StatementContext* ctx = nullptr)
      : locks_(locks) {
    if (locks_.owned_by_this_thread()) return;
    switch (cls) {
      case StatementClass::kRead:
        acquire(locks_.mode() == ConcurrencyMode::kSharedRead
                    ? Level::kShared
                    : Level::kWriter,
                ctx);
        break;
      case StatementClass::kDdl:
        acquire(Level::kExclusive, ctx);
        break;
      case StatementClass::kWrite:
      case StatementClass::kTxnBegin:
      case StatementClass::kTxnEnd:
        acquire(Level::kWriter, ctx);
        break;
    }
  }

  /// Explicit level (checkpoint wants kExclusive without being a DDL AST).
  StatementGuard(LockManager& locks, Level level,
                 StatementContext* ctx = nullptr)
      : locks_(locks) {
    if (locks_.owned_by_this_thread()) return;
    acquire(level, ctx);
  }

  /// Legacy read-only/mutating split (metadata reflection paths).
  StatementGuard(LockManager& locks, bool read_only,
                 StatementContext* ctx = nullptr)
      : StatementGuard(locks,
                       read_only ? StatementClass::kRead
                                 : StatementClass::kWrite,
                       ctx) {}

  ~StatementGuard() {
    switch (held_) {
      case Level::kNone: break;
      case Level::kShared: locks_.unlock_shared(); break;
      case Level::kWriter: locks_.unlock_writer(); break;
      case Level::kExclusive: locks_.unlock_exclusive(); break;
    }
  }

  StatementGuard(const StatementGuard&) = delete;
  StatementGuard& operator=(const StatementGuard&) = delete;

 private:
  void acquire(Level level, StatementContext* ctx) {
    switch (level) {
      case Level::kNone: break;
      case Level::kShared: locks_.lock_shared(ctx); break;
      case Level::kWriter: locks_.lock_writer(ctx); break;
      case Level::kExclusive: locks_.lock_exclusive(ctx); break;
    }
    held_ = level;
  }

  LockManager& locks_;
  Level held_ = Level::kNone;
};

}  // namespace perfdmf::sqldb
