#include "analysis/correlation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/stats.h"
#include "util/error.h"

namespace perfdmf::analysis {

CorrelationMatrix correlate_metrics(const profile::TrialData& trial,
                                    const std::string& event_name) {
  const std::size_t n_metrics = trial.metrics().size();
  const std::size_t n_threads = trial.threads().size();
  if (n_metrics == 0 || n_threads == 0) {
    throw InvalidArgument("correlate_metrics: empty trial");
  }
  std::optional<std::size_t> only_event;
  if (!event_name.empty()) {
    only_event = trial.find_event(event_name);
    if (!only_event) {
      throw InvalidArgument("no event '" + event_name + "' in trial");
    }
  }

  // Per (thread, metric) totals.
  std::vector<double> totals(n_threads * n_metrics, 0.0);
  trial.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                              const profile::IntervalDataPoint& p) {
    if (only_event && e != *only_event) return;
    totals[t * n_metrics + m] += p.exclusive;
  });

  CorrelationMatrix out;
  for (const auto& metric : trial.metrics()) out.metric_names.push_back(metric.name);
  out.values.assign(n_metrics * n_metrics, 0.0);

  std::vector<double> series_i(n_threads);
  std::vector<double> series_j(n_threads);
  for (std::size_t i = 0; i < n_metrics; ++i) {
    out.values[i * n_metrics + i] = 1.0;
    for (std::size_t j = i + 1; j < n_metrics; ++j) {
      for (std::size_t t = 0; t < n_threads; ++t) {
        series_i[t] = totals[t * n_metrics + i];
        series_j[t] = totals[t * n_metrics + j];
      }
      const double r = pearson(series_i, series_j);
      out.values[i * n_metrics + j] = r;
      out.values[j * n_metrics + i] = r;
    }
  }
  return out;
}

std::vector<CorrelatedPair> strong_correlations(const CorrelationMatrix& matrix,
                                                double threshold) {
  std::vector<CorrelatedPair> out;
  const std::size_t n = matrix.metric_names.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double r = matrix.at(i, j);
      if (std::fabs(r) >= threshold) {
        out.push_back({matrix.metric_names[i], matrix.metric_names[j], r});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const CorrelatedPair& a,
                                       const CorrelatedPair& b) {
    return std::fabs(a.r) > std::fabs(b.r);
  });
  return out;
}

std::string format_correlation_matrix(const CorrelationMatrix& matrix) {
  std::string out = "metric";
  for (const auto& name : matrix.metric_names) out += "\t" + name;
  out += "\n";
  char buffer[32];
  const std::size_t n = matrix.metric_names.size();
  for (std::size_t i = 0; i < n; ++i) {
    out += matrix.metric_names[i];
    for (std::size_t j = 0; j < n; ++j) {
      std::snprintf(buffer, sizeof buffer, "\t%+.3f", matrix.at(i, j));
      out += buffer;
    }
    out += "\n";
  }
  return out;
}

}  // namespace perfdmf::analysis
