// Tests for the self-hosted telemetry layer: the metrics registry and
// its histogram percentiles, the slow-query trace ring, the
// PERFDMF_METRICS / PERFDMF_SLOW_QUERIES virtual tables (queried through
// plain SQL), and the log/span plumbing underneath. Recording-dependent
// assertions are gated on telemetry::compiled_in() so the suite also
// passes under -DPERFDMF_TELEMETRY=OFF, where every recording is
// compiled out but the registry and system tables still exist.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "sqldb/connection.h"
#include "sqldb/system_tables.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/error.h"
#include "util/log.h"

using namespace perfdmf::telemetry;
using perfdmf::DbError;
using perfdmf::InvalidArgument;
using perfdmf::sqldb::Connection;

namespace {

// --------------------------------------------------------------- registry

TEST(MetricsRegistry, FindOrCreateReturnsStableReference) {
  auto& registry = MetricsRegistry::instance();
  Counter& a = registry.counter("test.registry.counter");
  Counter& b = registry.counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("test.registry.histogram");
  Histogram& h2 = registry.histogram("test.registry.histogram");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.registry.kind_mix");
  EXPECT_THROW(registry.gauge("test.registry.kind_mix"), InvalidArgument);
  EXPECT_THROW(registry.histogram("test.registry.kind_mix"), InvalidArgument);
}

TEST(MetricsRegistry, CounterAndGaugeRecord) {
  auto& registry = MetricsRegistry::instance();
  Counter& counter = registry.counter("test.basics.counter");
  counter.reset();
  counter.add();
  counter.add(41);
  Gauge& gauge = registry.gauge("test.basics.gauge");
  gauge.reset();
  gauge.set(10);
  gauge.add(-3);
  if (compiled_in()) {
    EXPECT_EQ(counter.value(), 42u);
    EXPECT_EQ(gauge.value(), 7);
  } else {
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(gauge.value(), 0);
  }
}

TEST(MetricsRegistry, SnapshotCarriesKindAndValue) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.snapshot.counter").add(5);
  const auto samples = registry.snapshot();
  const auto it = std::find_if(samples.begin(), samples.end(), [](const auto& s) {
    return s.name == "test.snapshot.counter";
  });
  ASSERT_NE(it, samples.end());
  EXPECT_EQ(it->kind, MetricSample::Kind::kCounter);
  EXPECT_DOUBLE_EQ(it->value, compiled_in() ? 5.0 : 0.0);
  // Histogram-only fields stay negative (-> SQL NULL) for counters.
  EXPECT_LT(it->count, 0);
  EXPECT_LT(it->p50, 0.0);
}

// -------------------------------------------------------------- histogram

TEST(Histogram, BucketBoundsAreConsistent) {
  // Every sample lands in a bucket whose upper bound is >= the sample and
  // whose predecessor's upper bound is < the sample.
  for (std::uint64_t sample :
       {0ull, 1ull, 2ull, 3ull, 4ull, 5ull, 7ull, 8ull, 15ull, 100ull,
        1023ull, 1024ull, 4095ull, 1000000ull, 123456789ull}) {
    const std::size_t bucket = Histogram::bucket_of(sample);
    ASSERT_LT(bucket, Histogram::kBucketCount);
    EXPECT_GE(Histogram::bucket_upper_bound(bucket), sample)
        << "sample " << sample;
    if (bucket > 0) {
      EXPECT_LT(Histogram::bucket_upper_bound(bucket - 1), sample)
          << "sample " << sample;
    }
  }
  // Bucket index is monotone in the sample.
  std::size_t last = 0;
  for (std::uint64_t s = 0; s < 10000; ++s) {
    const std::size_t b = Histogram::bucket_of(s);
    EXPECT_GE(b, last);
    last = b;
  }
}

TEST(Histogram, PercentilesTrackExactQuantiles) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  Histogram h;
  // Uniform 1..1000: exact quantiles are q*1000.
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  const struct {
    double q;
    double exact;
  } cases[] = {{0.50, 500.0}, {0.95, 950.0}, {0.99, 990.0}};
  for (const auto& c : cases) {
    const double estimate = h.percentile(c.q);
    // Geometric buckets with 4 subdivisions per power of two bound the
    // relative error of the bucket upper bound at ~25%.
    EXPECT_GE(estimate, c.exact * 0.99) << "q=" << c.q;
    EXPECT_LE(estimate, c.exact * 1.25 + 1.0) << "q=" << c.q;
  }
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

// -------------------------------------------------------------- TraceRing

TEST(TraceRing, WraparoundKeepsNewestInOrder) {
  auto& ring = TraceRing::instance();
  ring.clear();
  ring.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    QueryTrace trace;
    trace.sql = "q" + std::to_string(i);
    ring.push(std::move(trace));
  }
  EXPECT_EQ(ring.size(), 4u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().sql, "q6");
  EXPECT_EQ(snap.back().sql, "q9");
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].id, snap[i].id);  // ids stay monotonic
  }
  // Shrinking drops the oldest retained traces.
  ring.set_capacity(2);
  const auto shrunk = ring.snapshot();
  ASSERT_EQ(shrunk.size(), 2u);
  EXPECT_EQ(shrunk.front().sql, "q8");
  ring.set_capacity(TraceRing::kDefaultCapacity);
  ring.clear();
}

// ---------------------------------------------------------- system tables

class SystemTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    conn.execute_update(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER, y REAL)");
    auto stmt = conn.prepare("INSERT INTO t (x, y) VALUES (?, ?)");
    conn.begin();
    for (int i = 0; i < 100; ++i) {
      stmt.set_int(1, i % 7);
      stmt.set_double(2, i * 0.5);
      stmt.execute_update();
    }
    conn.commit();
  }

  Connection conn;
};

TEST_F(SystemTableTest, MetricsTableServesLiveCounters) {
  auto rs = conn.execute(
      "SELECT name, value FROM PERFDMF_METRICS WHERE name LIKE 'sqldb.%'");
  // Hot-path metrics register on first use whether or not recording is
  // compiled in, so the name set is non-empty in both builds.
  EXPECT_GT(rs.row_count(), 0u);

  auto commits = conn.execute(
      "SELECT value FROM PERFDMF_METRICS WHERE name = 'sqldb.txn.commits'");
  ASSERT_EQ(commits.row_count(), 1u);
  commits.next();
  if (compiled_in()) {
    EXPECT_GE(commits.get_double(1), 1.0);  // the SetUp bulk-insert commit
  } else {
    EXPECT_DOUBLE_EQ(commits.get_double(1), 0.0);
  }
}

TEST_F(SystemTableTest, MetricsTableSupportsFilterAndAggregation) {
  auto rs = conn.execute(
      "SELECT kind, COUNT(*) FROM PERFDMF_METRICS GROUP BY kind");
  EXPECT_GE(rs.row_count(), 1u);
  EXPECT_LE(rs.row_count(), 3u);  // counter, gauge, histogram

  // Histogram rows expose count/sum/percentiles; counters serve NULLs.
  auto hist = conn.execute(
      "SELECT COUNT(*) FROM PERFDMF_METRICS"
      " WHERE kind = 'histogram' AND p95 IS NOT NULL");
  hist.next();
  auto counter_nulls = conn.execute(
      "SELECT COUNT(*) FROM PERFDMF_METRICS"
      " WHERE kind = 'counter' AND p95 IS NULL");
  counter_nulls.next();
  EXPECT_GT(hist.get_int(1), 0);
  EXPECT_GT(counter_nulls.get_int(1), 0);

  // Case-insensitive resolution, like ordinary tables.
  auto lower = conn.execute("SELECT COUNT(*) FROM perfdmf_metrics");
  lower.next();
  EXPECT_GT(lower.get_int(1), 0);
}

TEST_F(SystemTableTest, MetadataReflectsSystemTables) {
  auto meta = conn.get_meta_data();
  const auto tables = meta.get_tables();
  EXPECT_NE(std::find(tables.begin(), tables.end(), "PERFDMF_METRICS"),
            tables.end());
  EXPECT_NE(std::find(tables.begin(), tables.end(), "PERFDMF_SLOW_QUERIES"),
            tables.end());
  const auto columns = meta.get_columns("PERFDMF_METRICS");
  ASSERT_EQ(columns.size(), 8u);
  EXPECT_EQ(columns[0].name, "name");
  const auto slow_columns = meta.get_columns("PERFDMF_SLOW_QUERIES");
  ASSERT_EQ(slow_columns.size(), 13u);
  EXPECT_EQ(slow_columns[3].name, "sql");
  EXPECT_EQ(slow_columns[6].name, "outcome");
}

TEST_F(SystemTableTest, WritesAreRejected) {
  EXPECT_THROW(
      conn.execute_update("INSERT INTO PERFDMF_METRICS (name) VALUES ('x')"),
      DbError);
  EXPECT_THROW(
      conn.execute_update("UPDATE PERFDMF_METRICS SET value = 0"), DbError);
  EXPECT_THROW(conn.execute_update("DELETE FROM PERFDMF_SLOW_QUERIES"),
               DbError);
  EXPECT_THROW(
      conn.execute_update("CREATE TABLE PERFDMF_METRICS (id INTEGER)"),
      DbError);
}

TEST_F(SystemTableTest, SlowQueryTraceEndToEnd) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  auto& ring = TraceRing::instance();
  ring.clear();
  const double saved = slow_query_threshold_ms();
  set_slow_query_threshold_ms(0.0);  // every statement is "slow"
  auto rs = conn.execute("SELECT COUNT(*), AVG(y) FROM t WHERE x = 3");
  ASSERT_EQ(rs.row_count(), 1u);
  set_slow_query_threshold_ms(saved);

  auto traces = conn.execute(
      "SELECT sql, plan, total_ms, parse_ms, execute_ms"
      " FROM PERFDMF_SLOW_QUERIES");
  bool found = false;
  while (traces.next()) {
    if (traces.get_string(1).find("WHERE x = 3") == std::string::npos) continue;
    found = true;
    // EXPLAIN access path was captured because the threshold was armed.
    EXPECT_FALSE(traces.get_string(2).empty());
    EXPECT_GE(traces.get_double(3), 0.0);  // total
    EXPECT_GE(traces.get_double(4), 0.0);  // parse
    EXPECT_GE(traces.get_double(5), 0.0);  // execute
    EXPECT_GE(traces.get_double(3),
              traces.get_double(4));  // phases are a breakdown of total
  }
  EXPECT_TRUE(found) << "slow SELECT did not reach PERFDMF_SLOW_QUERIES";
  ring.clear();
}

TEST(SlowQueryLog, ThresholdRoundTrips) {
  const double saved = slow_query_threshold_ms();
  set_slow_query_threshold_ms(12.5);
  EXPECT_DOUBLE_EQ(slow_query_threshold_ms(), 12.5);
  set_slow_query_threshold_ms(-1.0);
  EXPECT_DOUBLE_EQ(slow_query_threshold_ms(), -1.0);
  set_slow_query_threshold_ms(saved);
}

// ----------------------------------------------------------- JSON exports

TEST(TelemetryJson, EscapesAndExports) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  const std::string metrics = metrics_to_json();
  EXPECT_EQ(metrics.rfind("{\"metrics\":[", 0), 0u);
  EXPECT_EQ(metrics.back(), '}');
  const std::string traces = traces_to_json();
  EXPECT_EQ(traces.rfind("{\"traces\":[", 0), 0u);
}

// ----------------------------------------------------------- concurrency

// Eight threads hammer shared metrics while running real statements (and
// while the main thread snapshots the registry through SQL); exercised
// under TSan via the concurrency label.
TEST(TelemetryConcurrency, EightThreadCounterAndSpanHammer) {
  constexpr int kThreads = 8;
  constexpr int kIters = 200;

  Connection setup;
  setup.execute_update("CREATE TABLE h (id INTEGER PRIMARY KEY, x INTEGER)");
  auto insert = setup.prepare("INSERT INTO h (x) VALUES (?)");
  setup.begin();
  for (int i = 0; i < 64; ++i) {
    insert.set_int(1, i % 4);
    insert.execute_update();
  }
  setup.commit();
  auto database = setup.database_ptr();

  auto& registry = MetricsRegistry::instance();
  Counter& hits = registry.counter("test.hammer.counter");
  Histogram& latencies = registry.histogram("test.hammer.micros");
  hits.reset();
  latencies.reset();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([database, t] {
      Connection conn(database);
      auto stmt = conn.prepare("SELECT COUNT(*) FROM h WHERE x = ?");
      auto& counter = MetricsRegistry::instance().counter("test.hammer.counter");
      auto& histogram =
          MetricsRegistry::instance().histogram("test.hammer.micros");
      for (int i = 0; i < kIters; ++i) {
        counter.add();
        histogram.record(static_cast<std::uint64_t>(t * kIters + i));
        stmt.set_int(1, i % 4);
        auto rs = stmt.execute_query();
        if (rs.row_count() != 1) std::abort();
      }
    });
  }
  // Race registry snapshots against the recording threads.
  for (int i = 0; i < 20; ++i) {
    auto rs = setup.execute("SELECT COUNT(*) FROM PERFDMF_METRICS");
    rs.next();
    EXPECT_GT(rs.get_int(1), 0);
  }
  for (auto& w : workers) w.join();

  if (compiled_in()) {
    EXPECT_EQ(hits.value(), static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(latencies.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  } else {
    EXPECT_EQ(hits.value(), 0u);
  }
}

// ------------------------------------------------------------- util::log

TEST(Log, ParseLogLevel) {
  using perfdmf::util::LogLevel;
  using perfdmf::util::parse_log_level;
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
}

TEST(Log, Iso8601Shape) {
  const std::string now = perfdmf::util::iso8601_now();
  ASSERT_EQ(now.size(), 24u);  // YYYY-MM-DDTHH:MM:SS.mmmZ
  EXPECT_EQ(now[4], '-');
  EXPECT_EQ(now[10], 'T');
  EXPECT_EQ(now[19], '.');
  EXPECT_EQ(now.back(), 'Z');
}

TEST(Log, ThreadIdStableAndDistinct) {
  const std::string mine = perfdmf::util::current_thread_id();
  EXPECT_EQ(mine, perfdmf::util::current_thread_id());
  std::string other;
  std::thread([&other] { other = perfdmf::util::current_thread_id(); }).join();
  EXPECT_NE(mine, other);
}

}  // namespace
