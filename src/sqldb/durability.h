// Durability policy and crash-recovery reporting for the sqldb engine.
//
// SyncMode trades commit latency against the window of statements an OS
// crash can lose (a process crash alone loses nothing the kernel already
// accepted). RecoveryReport is filled by Database when it opens a
// file-backed store and tells the caller exactly what recovery did —
// instead of burying a corrupt log or a rescued snapshot in the warn log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace perfdmf::sqldb {

enum class SyncMode {
  kAlways,    // fsync the WAL after every append (single statements too)
  kOnCommit,  // fsync only on transaction commit batches (default)
  kNone,      // never fsync (bulk loads; OS crash may lose the tail)
};

struct DurabilityOptions {
  SyncMode sync = SyncMode::kOnCommit;

  /// Defaults overridden by PERFDMF_SYNC=always|on_commit|none.
  static DurabilityOptions from_env();
};

/// What opening a file-backed Database found and did. clean() is the
/// normal case: newest snapshot loaded, WAL replayed to its tail.
struct RecoveryReport {
  /// Newest snapshot was missing or corrupt and snapshot.pdb.prev was
  /// loaded instead (snapshot_error says why).
  bool used_previous_snapshot = false;
  std::string snapshot_error;

  /// WAL records re-executed on top of the snapshot.
  std::size_t replayed_records = 0;

  /// Mid-log corruption: a record before the tail failed its CRC /
  /// sequence check. Replay stopped at wal_corruption_offset and
  /// discarded_records structurally-whole records after it were NOT
  /// applied. (A torn tail — crash mid-append — is expected, discarded
  /// silently, and does not set this.)
  bool wal_corrupt = false;
  std::uint64_t wal_corruption_offset = 0;
  std::size_t discarded_records = 0;
  std::string wal_error;

  /// Replayed records whose statement failed to execute (each is also
  /// described in `warnings`).
  std::size_t failed_statements = 0;
  std::vector<std::string> warnings;

  bool clean() const {
    return !used_previous_snapshot && !wal_corrupt && failed_statements == 0;
  }
};

}  // namespace perfdmf::sqldb
