// SQL tokenizer. Keywords are returned as identifiers and matched
// case-insensitively by the parser (ANSI-style). String literals use
// single quotes with '' escaping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace perfdmf::sqldb {

enum class TokenType {
  kIdentifier,  // bare word or "quoted identifier"
  kInteger,
  kReal,
  kString,
  kOperator,    // = != <> < <= > >= + - * / % ( ) , . ?
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       // identifier name / operator spelling / literal text
  std::int64_t int_value = 0;
  double real_value = 0.0;
  std::size_t offset = 0;  // byte position, for error messages
};

/// Tokenize a full statement (or statement list). Throws ParseError.
std::vector<Token> tokenize(std::string_view sql);

}  // namespace perfdmf::sqldb
