// perfexplorer_mining: the PerfExplorer data-mining workflow of paper
// §5.3 and Fig. 3, with the statistics engine implemented natively (the
// paper hands data to R).
//
// The client/server split mirrors the figure: this main() is the client;
// AnalysisServer is the back end integrated with the PerfDMF database.
// 1. Generate an sPPM-style trial: many threads, 7 PAPI-like metrics,
//    planted behavioural clusters (boundary vs interior ranks).
// 2. Archive it.
// 3. Submit k-means + correlation requests to the analysis server
//    (async, like the detached back end of the paper).
// 4. Locally inspect cluster summaries and PCA for display.
// 5. Browse the results the server saved back into the archive.
//
// Run:  ./perfexplorer_mining [threads]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/correlation.h"
#include "analysis/kmeans.h"
#include "analysis/pca.h"
#include "api/database_session.h"
#include "explorer/analysis_server.h"
#include "io/synth.h"

using namespace perfdmf;

int main(int argc, char** argv) {
  io::synth::ClusterSpec spec;
  spec.threads = argc > 1 ? std::atoi(argv[1]) : 256;
  spec.cluster_count = 3;
  std::printf("generating sPPM-like trial: %d threads x %zu metrics x %zu events\n",
              spec.threads, spec.metric_count, spec.event_count);
  auto planted = io::synth::generate_clustered_trial(spec);

  auto connection = std::make_shared<sqldb::Connection>();
  api::DatabaseSession session(connection);
  const std::int64_t trial_id =
      session.save_trial(planted.trial, "sPPM", "frost runs");
  std::printf("archived as trial %lld (%zu data points)\n\n",
              static_cast<long long>(trial_id),
              planted.trial.interval_point_count());

  // Client -> server: submit the mining requests asynchronously (Fig. 3:
  // "The client makes requests to an analysis server back end").
  explorer::AnalysisServer server(connection, /*workers=*/2);
  explorer::AnalysisRequest kmeans_request;
  kmeans_request.trial_id = trial_id;
  kmeans_request.kind = explorer::AnalysisKind::kKMeans;
  kmeans_request.k = spec.cluster_count;
  auto kmeans_future = server.submit_async(kmeans_request);
  explorer::AnalysisRequest correlation_request;
  correlation_request.trial_id = trial_id;
  correlation_request.kind = explorer::AnalysisKind::kCorrelation;
  auto correlation_future = server.submit_async(correlation_request);

  // Meanwhile the client prepares its local display data.
  auto loaded = session.load_selected_trial();
  auto features = analysis::thread_features(loaded);
  std::printf("feature matrix: %zu threads x %zu (event, metric) columns\n",
              features.rows, features.cols);

  // Server results arrive; the k-means assignment comes back through the
  // archived analysis result.
  auto kmeans_response = kmeans_future.get();
  std::printf("server kmeans: %s\n", kmeans_response.summary.c_str());

  // The client re-runs the same clustering locally for its interactive
  // views (summaries below); determinism makes the two agree.
  analysis::KMeansOptions options;
  options.k = spec.cluster_count;
  options.restarts = 5;
  auto clusters =
      analysis::kmeans(features.values, features.rows, features.cols, options);
  for (std::size_t c = 0; c < clusters.cluster_sizes.size(); ++c) {
    std::printf("  cluster %zu: %zu threads\n", c, clusters.cluster_sizes[c]);
  }
  const double ari =
      analysis::adjusted_rand_index(clusters.assignment, planted.ground_truth);
  std::printf("agreement with planted structure (ARI): %.3f\n\n", ari);

  // Cluster summaries: strongest-signature columns per cluster.
  auto summaries = analysis::summarize_clusters(features, clusters);
  for (std::size_t c = 0; c < summaries.size(); ++c) {
    double best = 0.0;
    std::size_t best_column = 0;
    for (std::size_t d = 0; d < features.cols; ++d) {
      if (std::fabs(summaries[c][d]) > std::fabs(best)) {
        best = summaries[c][d];
        best_column = d;
      }
    }
    std::printf("cluster %zu signature: %s (%+.2f sd)\n", c,
                features.column_names[best_column].c_str(), best);
  }
  std::printf("\n");

  // PCA: how many components explain 95% of variance?
  auto reduced = analysis::pca(features.values, features.rows, features.cols, 2);
  double cumulative = 0.0;
  std::size_t needed = 0;
  for (double ratio : reduced.explained_variance_ratio) {
    cumulative += ratio;
    ++needed;
    if (cumulative >= 0.95) break;
  }
  std::printf("PCA: %zu of %zu components explain %.1f%% of variance\n", needed,
              features.cols, 100.0 * cumulative);

  // Metric correlation from the server (Ahn & Vetter reproduction).
  auto correlation_response = correlation_future.get();
  std::printf("server correlation: %s\n", correlation_response.summary.c_str());
  auto matrix = analysis::correlate_metrics(loaded);
  for (const auto& pair : analysis::strong_correlations(matrix, 0.8)) {
    std::printf("  %-14s ~ %-14s  r=%+.3f\n", pair.metric_a.c_str(),
                pair.metric_b.c_str(), pair.r);
  }

  // Browse what the server saved back (Fig. 3: "the results are saved to
  // the database ... the user can browse the results").
  std::printf("\nresults stored in the archive:\n");
  for (const auto& result : server.browse(trial_id)) {
    std::printf("  [%lld] %-12s %s\n", static_cast<long long>(result.id),
                result.kind.c_str(), result.name.c_str());
  }
  return 0;
}
