#include "sqldb/connection.h"

#include <cassert>
#include <cstdlib>

#include "sqldb/parser.h"
#include "sqldb/system_tables.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

namespace {

/// DML results are a one-cell affected-row count; unwrap it.
std::size_t update_count(const ResultSetData& result) {
  if (result.rows.size() == 1 && result.rows[0].size() == 1 &&
      result.rows[0][0].type() == ValueType::kInt) {
    return static_cast<std::size_t>(result.rows[0][0].as_int());
  }
  return result.rows.size();
}

/// Non-negative integer from the environment; unset/invalid/negative -> 0.
std::int64_t env_nonneg(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return 0;
  const auto parsed = util::parse_int(raw);
  return (parsed && *parsed > 0) ? *parsed : 0;
}

/// Process-global plan-cache counters, folded from every Connection's
/// per-instance PlanCacheStats (which remain for per-connection queries).
struct PlanCacheMetrics {
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  telemetry::Counter& invalidations;
  telemetry::Counter& evictions;

  static PlanCacheMetrics& instance() {
    auto& registry = telemetry::MetricsRegistry::instance();
    static PlanCacheMetrics m{
        registry.counter("sqldb.plan_cache.hits"),
        registry.counter("sqldb.plan_cache.misses"),
        registry.counter("sqldb.plan_cache.invalidations"),
        registry.counter("sqldb.plan_cache.evictions"),
    };
    return m;
  }
};

}  // namespace

// ------------------------------------------------------------- ResultSet

ResultSet::ResultSet(ResultSetData data) : data_(std::move(data)) {}

bool ResultSet::next() {
  if (cursor_ + 1 >= static_cast<std::ptrdiff_t>(data_.rows.size())) {
    cursor_ = static_cast<std::ptrdiff_t>(data_.rows.size());
    return false;
  }
  ++cursor_;
  return true;
}

const Row& ResultSet::current() const {
  if (cursor_ < 0 || cursor_ >= static_cast<std::ptrdiff_t>(data_.rows.size())) {
    throw DbError("ResultSet cursor is not on a row (call next())");
  }
  return data_.rows[static_cast<std::size_t>(cursor_)];
}

Value ResultSet::get(std::size_t index) const {
  const Row& row = current();
  if (index < 1 || index > row.size()) {
    throw DbError("ResultSet column index " + std::to_string(index) +
                  " out of range 1.." + std::to_string(row.size()));
  }
  return row[index - 1];
}

Value ResultSet::get(const std::string& column_name) const {
  for (std::size_t i = 0; i < data_.column_names.size(); ++i) {
    if (util::iequals(data_.column_names[i], column_name)) return get(i + 1);
  }
  throw DbError("ResultSet has no column named '" + column_name + "'");
}

std::string ResultSet::get_string(std::size_t index) const {
  Value v = get(index);
  return v.is_null() ? std::string() : v.to_string();
}

std::string ResultSet::get_string(const std::string& name) const {
  Value v = get(name);
  return v.is_null() ? std::string() : v.to_string();
}

// ---------------------------------------------------- PreparedStatement

PreparedStatement::PreparedStatement(Connection& connection, std::string sql)
    : connection_(connection),
      sql_(std::move(sql)),
      statement_(parse_statement(sql_)) {
  params_.resize(statement_.placeholder_count);
}

void PreparedStatement::debug_claim_thread() {
#ifndef NDEBUG
  // Statements are thread-affine (the AST is bound in place during
  // execution); the connection mutex no longer serializes them, so a
  // statement shared across threads is a silent data race. Catch it in
  // debug builds: the first thread to bind or execute owns the statement.
  std::thread::id expected{};
  const std::thread::id self = std::this_thread::get_id();
  if (!owner_thread_.compare_exchange_strong(expected, self,
                                             std::memory_order_relaxed) &&
      expected != self) {
    assert(!"PreparedStatement used from multiple threads; "
            "share the Connection, not the statement");
  }
#endif
}

void PreparedStatement::set_value(std::size_t index, Value value) {
  debug_claim_thread();
  if (index < 1 || index > params_.size()) {
    throw DbError("bind index " + std::to_string(index) + " out of range 1.." +
                  std::to_string(params_.size()));
  }
  params_[index - 1] = std::move(value);
}

void PreparedStatement::set_int(std::size_t index, std::int64_t value) {
  set_value(index, Value(value));
}
void PreparedStatement::set_double(std::size_t index, double value) {
  set_value(index, Value(value));
}
void PreparedStatement::set_string(std::size_t index, std::string value) {
  set_value(index, Value(std::move(value)));
}
void PreparedStatement::set_null(std::size_t index) { set_value(index, Value()); }

void PreparedStatement::clear_parameters() {
  params_.assign(params_.size(), Value());
}

ResultSet PreparedStatement::execute_query() {
  debug_claim_thread();
  telemetry::Span span(sql_);
  return ResultSet(connection_.run_statement(statement_, params_, sql_));
}

std::size_t PreparedStatement::execute_update() {
  debug_claim_thread();
  telemetry::Span span(sql_);
  return update_count(connection_.run_statement(statement_, params_, sql_));
}

// ------------------------------------------------------ DatabaseMetaData

std::vector<std::string> DatabaseMetaData::get_tables() {
  std::vector<std::string> names;
  {
    StatementGuard guard(connection_.database().locks(), /*read_only=*/true);
    names = connection_.database().table_names();
  }
  // Virtual system tables are part of the catalog a client sees, even
  // though they live outside the storage layer.
  for (auto& name : system_table_names()) names.push_back(std::move(name));
  return names;
}

std::vector<std::string> DatabaseMetaData::get_views() {
  StatementGuard guard(connection_.database().locks(), /*read_only=*/true);
  return connection_.database().view_names();
}

std::vector<DatabaseMetaData::ColumnInfo> DatabaseMetaData::get_columns(
    const std::string& table) {
  std::vector<ColumnInfo> out;
  if (is_system_table_name(table)) {
    const TableSchema& schema = system_table_schema(table);
    for (const auto& column : schema.columns()) {
      out.push_back(
          {column.name, column.type, column.not_null, column.primary_key});
    }
    return out;
  }
  StatementGuard guard(connection_.database().locks(), /*read_only=*/true);
  const Table& t = connection_.database().table(table);
  out.reserve(t.schema().columns().size());
  for (const auto& column : t.schema().columns()) {
    out.push_back({column.name, column.type, column.not_null, column.primary_key});
  }
  return out;
}

std::vector<DatabaseMetaData::ForeignKeyInfo> DatabaseMetaData::get_foreign_keys(
    const std::string& table) {
  if (is_system_table_name(table)) return {};  // telemetry has no FK edges
  StatementGuard guard(connection_.database().locks(), /*read_only=*/true);
  const Table& t = connection_.database().table(table);
  std::vector<ForeignKeyInfo> out;
  for (const auto& fk : t.schema().foreign_keys()) {
    out.push_back({fk.column, fk.parent_table, fk.parent_column});
  }
  return out;
}

// ------------------------------------------------------------ Connection

Connection::Connection() : database_(std::make_shared<Database>()) {
  init_governance_from_env();
}

Connection::Connection(const std::filesystem::path& directory)
    : database_(std::make_shared<Database>(directory)) {
  init_governance_from_env();
}

Connection::Connection(const std::filesystem::path& directory,
                       const DurabilityOptions& options)
    : database_(std::make_shared<Database>(directory, options)) {
  init_governance_from_env();
}

Connection::Connection(std::shared_ptr<Database> database)
    : database_(std::move(database)) {
  if (!database_) throw InvalidArgument("Connection over a null database");
  init_governance_from_env();
}

void Connection::init_governance_from_env() {
  statement_timeout_ms_ = env_nonneg("PERFDMF_STMT_TIMEOUT_MS");
  statement_mem_bytes_ =
      static_cast<std::uint64_t>(env_nonneg("PERFDMF_STMT_MEM_BYTES"));
}

StatementContext Connection::make_statement_context() {
  StatementContext ctx;
  ctx.deadline = util::Deadline::after_ms(statement_timeout_ms_);
  ctx.cancel = &cancel_flag_;
  ctx.mem_soft_bytes = statement_mem_bytes_;
  // Soft breach degrades to spill-free operators; only a statement whose
  // state still grows 4x past the budget is killed outright.
  ctx.mem_hard_bytes = statement_mem_bytes_ == 0 ? 0 : statement_mem_bytes_ * 4;
  return ctx;
}

ResultSetData Connection::run_statement(Statement& stmt, const Params& params,
                                        std::string_view sql) {
  StatementContext ctx = make_statement_context();
  ScopedStatementContext scope(ctx);
  // Listed in PERFDMF_STATEMENTS for the whole governed lifetime
  // (admission wait included). The guard outlives nothing it points to:
  // ctx lives until the end of this frame and the slot is cleared first.
  StatementRegistry::Guard listing(database_->statements(), sql, &ctx);
  try {
    return run_governed(stmt, params, sql, ctx);
  } catch (const DbError& e) {
    telemetry::Span* span = telemetry::Span::current();
    if (span != nullptr) {
      if (e.kind() == DbError::Kind::kTimeout) span->set_outcome("timed_out");
      if (e.kind() == DbError::Kind::kCancelled) span->set_outcome("cancelled");
    }
    throw;
  }
}

ResultSetData Connection::run_governed(Statement& stmt, const Params& params,
                                       std::string_view sql,
                                       StatementContext& ctx) {
  LockManager& locks = database_->locks();
  const StatementClass cls = classify_statement(stmt);

  if (locks.owned_by_this_thread()) {
    // Inside this thread's transaction: the exclusive lock is already
    // held (and the unit was admitted at BEGIN), so every statement
    // passes straight through. COMMIT/ROLLBACK ends the transaction and
    // releases (even the failure paths inside Database keep the
    // transaction closed, so release unconditionally). The admission
    // slot is released under the lock — after it another transaction
    // could adopt a new slot concurrently.
    if (cls == StatementClass::kTxnEnd) {
      ResultSetData result;
      try {
        result = database_->execute(stmt, params, sql);
      } catch (...) {
        database_->release_txn_admission();
        locks.release_transaction();
        throw;
      }
      database_->release_txn_admission();
      locks.release_transaction();
      // Group commit: await the deferred fsync only after the writer
      // mutex is released, so other committers can queue behind the
      // same leader fsync instead of serializing on the lock.
      database_->await_durability(ctx);
      return result;
    }
    return database_->execute(stmt, params, sql);
  }

  if (cls == StatementClass::kTxnBegin) {
    // Admission strictly precedes the lock (deadlock-freedom ordering);
    // the slot then spans the whole BEGIN..COMMIT unit.
    AdmissionSlot slot = database_->governor().admit(&ctx);
    locks.acquire_transaction(&ctx);
    try {
      ResultSetData result = database_->execute(stmt, params, sql);
      database_->adopt_txn_admission(std::move(slot));
      return result;
    } catch (...) {
      locks.release_transaction();
      throw;  // the slot's RAII releases it
    }
  }

  // kTxnEnd without an owned transaction still locks so the "COMMIT
  // without BEGIN" diagnostic reads transaction state safely (no
  // admission: it only reads state and reports an error).
  AdmissionSlot slot = cls == StatementClass::kTxnEnd
                           ? AdmissionSlot{}
                           : database_->governor().admit(&ctx);
  ResultSetData result;
  {
    StatementGuard guard(locks, cls, &ctx);
    result = database_->execute(stmt, params, sql);
  }
  // An autocommitted DML statement under SyncMode::kAlways defers its
  // fsync; awaiting it after the guard is what lets concurrent
  // single-statement committers share one group fsync.
  database_->await_durability(ctx);
  return result;
}

ResultSet Connection::execute(std::string_view sql, const Params& params) {
  return ResultSet(run_cached(sql, params));
}

std::size_t Connection::execute_update(std::string_view sql, const Params& params) {
  return update_count(run_cached(sql, params));
}

ResultSetData Connection::run_cached(std::string_view sql, const Params& params) {
  telemetry::Span span(sql);
  PlanLease lease = lease_plan(sql);
  if (lease.statement->kind == StatementKind::kExplain &&
      lease.statement->analyze) {
    // EXPLAIN ANALYZE: attribute every phase (admission, lock wait,
    // fsync, ...) even when no slow threshold or tracing is armed.
    span.arm_analyze();
  }
  ResultSetData result;
  try {
    result = run_statement(*lease.statement, params, sql);
  } catch (...) {
    release_plan(lease);
    throw;
  }
  const bool is_explain = lease.statement->kind == StatementKind::kExplain;
  const bool hit = lease.from_cache;
  release_plan(lease);
  if (is_explain) {
    // EXPLAIN reports the cache outcome for its own SQL text: the first
    // run misses, a repeat hits, and DDL in between invalidates.
    result.rows.push_back(
        {Value(std::string("plan-cache: ") + (hit ? "hit" : "miss"))});
  }
  return result;
}

Connection::PlanLease Connection::lease_plan(std::string_view sql) {
  PlanLease lease;
  lease.key.assign(sql);
  const std::uint64_t epoch = database_->schema_epoch();
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(lease.key);
    if (it != cache_.end()) {
      CacheEntry& entry = it->second;
      if (entry.in_use) {
        // The same SQL text is executing on another thread and the AST
        // binds in place; bypass the cache with a private parse.
        ++cache_stats_.misses;
        PlanCacheMetrics::instance().misses.add();
      } else if (entry.schema_epoch != epoch) {
        // DDL since this plan was parsed: drop it and re-parse.
        ++cache_stats_.invalidations;
        ++cache_stats_.misses;
        PlanCacheMetrics::instance().invalidations.add();
        PlanCacheMetrics::instance().misses.add();
        lru_.erase(entry.lru);
        cache_.erase(it);
        lease.cache_on_release = true;
      } else {
        ++cache_stats_.hits;
        PlanCacheMetrics::instance().hits.add();
        entry.in_use = true;
        lru_.splice(lru_.begin(), lru_, entry.lru);  // touch
        lease.statement = entry.statement.get();
        lease.from_cache = true;
        return lease;
      }
    } else {
      ++cache_stats_.misses;
      PlanCacheMetrics::instance().misses.add();
      lease.cache_on_release = cache_capacity_ > 0;
    }
  }
  {
    telemetry::PhaseTimer parse_phase(telemetry::Phase::kParse);
    lease.owned = std::make_unique<Statement>(parse_statement(sql));  // no lock held
  }
  lease.statement = lease.owned.get();
  return lease;
}

void Connection::release_plan(PlanLease& lease) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (lease.from_cache) {
    auto it = cache_.find(lease.key);
    if (it != cache_.end()) it->second.in_use = false;
    return;
  }
  if (!lease.cache_on_release || cache_capacity_ == 0) return;
  const StatementKind kind = lease.statement->kind;
  if (kind == StatementKind::kBegin || kind == StatementKind::kCommit ||
      kind == StatementKind::kRollback) {
    return;  // transaction control: nothing to gain from caching
  }
  if (cache_.count(lease.key) > 0) return;  // another thread cached it first
  lru_.push_front(lease.key);
  CacheEntry entry;
  entry.statement = std::move(lease.owned);
  // Re-read the epoch so a DDL statement's own plan is stamped with the
  // epoch it produced (it would otherwise self-invalidate immediately).
  entry.schema_epoch = database_->schema_epoch();
  entry.lru = lru_.begin();
  cache_.emplace(std::move(lease.key), std::move(entry));
  evict_to_capacity_locked();
}

void Connection::evict_to_capacity_locked() {
  while (cache_.size() > cache_capacity_) {
    // Evict from the cold end, skipping entries leased by running
    // statements (their ASTs are in use; dropping them would free a
    // statement mid-execution).
    bool evicted = false;
    for (auto it = lru_.end(); it != lru_.begin();) {
      --it;
      auto entry = cache_.find(*it);
      if (entry != cache_.end() && !entry->second.in_use) {
        cache_.erase(entry);
        lru_.erase(it);
        ++cache_stats_.evictions;
        PlanCacheMetrics::instance().evictions.add();
        evicted = true;
        break;
      }
    }
    if (!evicted) break;  // everything leased; temporarily over capacity
  }
}

PlanCacheStats Connection::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_stats_;
}

void Connection::set_plan_cache_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_capacity_ = capacity;
  evict_to_capacity_locked();
}

void Connection::begin() {
  LockManager& locks = database_->locks();
  if (locks.owned_by_this_thread()) {
    database_->begin();  // reports "nested transactions are not supported"
    return;
  }
  // Same unit discipline as the SQL BEGIN path: admit, then lock; the
  // slot rides on the database until commit()/rollback() releases it.
  StatementContext ctx = make_statement_context();
  ScopedStatementContext scope(ctx);
  AdmissionSlot slot = database_->governor().admit(&ctx);
  locks.acquire_transaction(&ctx);
  try {
    database_->begin();
    database_->adopt_txn_admission(std::move(slot));
  } catch (...) {
    locks.release_transaction();
    throw;
  }
}

void Connection::commit() {
  LockManager& locks = database_->locks();
  if (!locks.owned_by_this_thread()) {
    StatementGuard guard(locks, /*read_only=*/false);
    database_->commit();  // reports "COMMIT without BEGIN"
    return;
  }
  try {
    database_->commit();
  } catch (...) {
    database_->release_txn_admission();
    locks.release_transaction();
    throw;
  }
  database_->release_txn_admission();
  locks.release_transaction();
}

void Connection::rollback() {
  LockManager& locks = database_->locks();
  if (!locks.owned_by_this_thread()) {
    StatementGuard guard(locks, /*read_only=*/false);
    database_->rollback();  // reports "ROLLBACK without BEGIN"
    return;
  }
  try {
    database_->rollback();
  } catch (...) {
    database_->release_txn_admission();
    locks.release_transaction();
    throw;
  }
  database_->release_txn_admission();
  locks.release_transaction();
}

void Connection::checkpoint() {
  // Checkpoint rewrites version chains (vacuum) and frees retired
  // stamps, so it must drain every snapshot reader, not just writers.
  StatementGuard guard(database_->locks(), StatementGuard::Level::kExclusive);
  database_->checkpoint();
}

}  // namespace perfdmf::sqldb
