// DataSource: the abstract object through which interactions with profile
// data sources take place (paper §4). Each supported profile format has a
// concrete DataSource (GprofDataSource, TauDataSource, ...) that parses
// its on-disk representation into the common TrialData model.
#pragma once

#include <memory>

#include "profile/trial_data.h"

namespace perfdmf::io {

enum class ProfileFormat {
  kTau,
  kGprof,
  kMpiP,
  kDynaprof,
  kHpm,
  kPsrun,
  kPerfDmfXml,
};

const char* format_name(ProfileFormat format);

class DataSource {
 public:
  virtual ~DataSource() = default;

  /// Parse the source into the common representation. Derived fields
  /// (percentages, per-call) and trial dimensions are computed before
  /// returning. Throws ParseError / IoError on bad input.
  virtual profile::TrialData load() = 0;

  virtual ProfileFormat format() const = 0;
};

}  // namespace perfdmf::io
