// Typed SQL values.
//
// The engine supports the four types PerfDMF's schema needs: NULL,
// 64-bit integers, doubles, and text. Comparison follows SQL semantics
// where the engine needs them (NULL sorts first in ORDER BY; predicate
// three-valued logic is handled in expr_eval, not here).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace perfdmf::sqldb {

enum class ValueType { kNull, kInt, kReal, kText };

const char* value_type_name(ValueType type);

class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(std::int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  /// Accessors throw DbError when the type does not match (numeric
  /// coercion int<->real is allowed; see as_real / as_int).
  std::int64_t as_int() const;
  double as_real() const;
  const std::string& as_text() const;

  /// Render for display and for the WAL text encoding.
  std::string to_string() const;

  /// Total ordering used by indexes and ORDER BY: NULL < numbers < text;
  /// ints and reals compare numerically across types.
  friend bool operator<(const Value& a, const Value& b) { return a.compare(b) < 0; }
  friend bool operator==(const Value& a, const Value& b) { return a.compare(b) == 0; }
  friend bool operator!=(const Value& a, const Value& b) { return a.compare(b) != 0; }
  friend bool operator<=(const Value& a, const Value& b) { return a.compare(b) <= 0; }
  friend bool operator>(const Value& a, const Value& b) { return a.compare(b) > 0; }
  friend bool operator>=(const Value& a, const Value& b) { return a.compare(b) >= 0; }

  /// -1 / 0 / +1 total ordering (see operator<).
  int compare(const Value& other) const;

  /// Hash consistent with operator== (ints and equal-valued reals collide).
  std::size_t hash() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> data_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};

}  // namespace perfdmf::sqldb
