// Tests for the TAU profile reader/writer: grammar, layouts, round trips.
#include <gtest/gtest.h>

#include "io/detect.h"
#include "io/synth.h"
#include "io/tau_format.h"
#include "util/error.h"
#include "util/file.h"

using namespace perfdmf;
using namespace perfdmf::io;

namespace {

const char* kSimpleProfile =
    "2 templated_functions_MULTI_TIME\n"
    "# Name Calls Subrs Excl Incl ProfileCalls #\n"
    "\"main\" 1 1 200 1000 0 GROUP=\"TAU_DEFAULT\"\n"
    "\"work()\" 10 0 800 800 0 GROUP=\"TAU_USER|compute\"\n"
    "0 aggregates\n"
    "1 userevents\n"
    "# eventname numevents max min mean sumsqr\n"
    "\"message size\" 4 100 10 50 11000\n";

}  // namespace

TEST(TauParse, SingleFileFields) {
  profile::TrialData trial;
  TauDataSource::parse_file(kSimpleProfile, {0, 0, 0}, trial);
  ASSERT_EQ(trial.metrics().size(), 1u);
  EXPECT_EQ(trial.metrics()[0].name, "TIME");
  ASSERT_EQ(trial.events().size(), 2u);
  EXPECT_EQ(trial.events()[0].name, "main");
  EXPECT_EQ(trial.events()[1].group, "TAU_USER|compute");

  const auto* main_point = trial.interval_data(0, 0, 0);
  ASSERT_NE(main_point, nullptr);
  EXPECT_DOUBLE_EQ(main_point->num_calls, 1.0);
  EXPECT_DOUBLE_EQ(main_point->exclusive, 200.0);
  EXPECT_DOUBLE_EQ(main_point->inclusive, 1000.0);
}

TEST(TauParse, UserEventStatistics) {
  profile::TrialData trial;
  TauDataSource::parse_file(kSimpleProfile, {0, 0, 0}, trial);
  ASSERT_EQ(trial.atomic_events().size(), 1u);
  EXPECT_EQ(trial.atomic_events()[0].name, "message size");
  const auto* p = trial.atomic_data(0, 0);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->sample_count, 4.0);
  EXPECT_DOUBLE_EQ(p->maximum, 100.0);
  EXPECT_DOUBLE_EQ(p->minimum, 10.0);
  EXPECT_DOUBLE_EQ(p->mean, 50.0);
  // stddev from sumsqr: 11000/4 - 2500 = 250 -> sqrt(250)
  EXPECT_NEAR(p->std_dev, 15.811388, 1e-5);
}

TEST(TauParse, PlainHeaderDefaultsToTimeMetric) {
  profile::TrialData trial;
  TauDataSource::parse_file(
      "1 templated_functions\n\"f\" 1 0 5 5 0\n0 aggregates\n0 userevents\n",
      {0, 0, 0}, trial);
  EXPECT_EQ(trial.metrics()[0].name, "TIME");
}

TEST(TauParse, QuotedNameWithSpaces) {
  profile::TrialData trial;
  TauDataSource::parse_file(
      "1 templated_functions_MULTI_TIME\n"
      "\"void foo(int, double) [{file.cpp} {12}]\" 2 0 10 10 0 GROUP=\"X\"\n"
      "0 aggregates\n0 userevents\n",
      {0, 0, 0}, trial);
  EXPECT_EQ(trial.events()[0].name, "void foo(int, double) [{file.cpp} {12}]");
}

TEST(TauParse, MalformedInputsThrow) {
  profile::TrialData trial;
  EXPECT_THROW(TauDataSource::parse_file("", {0, 0, 0}, trial), ParseError);
  EXPECT_THROW(TauDataSource::parse_file("garbage\n", {0, 0, 0}, trial),
               ParseError);
  EXPECT_THROW(
      TauDataSource::parse_file("2 templated_functions_MULTI_TIME\n"
                                "\"only one\" 1 0 1 1 0\n",
                                {0, 0, 0}, trial),
      ParseError);
  EXPECT_THROW(
      TauDataSource::parse_file("1 templated_functions_MULTI_TIME\n"
                                "unquoted 1 0 1 1 0\n0 aggregates\n",
                                {0, 0, 0}, trial),
      ParseError);
}

TEST(TauDirectory, FlatLayoutLoadsAllThreads) {
  util::ScopedTempDir dir;
  for (int n = 0; n < 3; ++n) {
    util::write_file(dir.path() / ("profile." + std::to_string(n) + ".0.0"),
                     kSimpleProfile);
  }
  TauDataSource source(dir.path());
  auto trial = source.load();
  EXPECT_EQ(trial.threads().size(), 3u);
  EXPECT_EQ(trial.trial().node_count, 3);
  EXPECT_EQ(trial.interval_point_count(), 6u);  // 2 events x 3 threads
}

TEST(TauDirectory, PrefixFilterRestrictsFiles) {
  util::ScopedTempDir dir;
  util::write_file(dir.path() / "profile.0.0.0", kSimpleProfile);
  util::write_file(dir.path() / "profile.1.0.0", kSimpleProfile);
  ScanFilter filter;
  filter.prefix = "profile.0";
  TauDataSource source(dir.path(), filter);
  EXPECT_EQ(source.load().threads().size(), 1u);
}

TEST(TauDirectory, EmptyDirectoryThrows) {
  util::ScopedTempDir dir;
  TauDataSource source(dir.path());
  EXPECT_THROW(source.load(), ParseError);
}

TEST(TauDirectory, IgnoresNonProfileFiles) {
  util::ScopedTempDir dir;
  util::write_file(dir.path() / "profile.0.0.0", kSimpleProfile);
  util::write_file(dir.path() / "README", "not a profile");
  util::write_file(dir.path() / "profile.bad.name", "not a profile");
  TauDataSource source(dir.path());
  EXPECT_EQ(source.load().threads().size(), 1u);
}

TEST(TauRoundTrip, SingleMetricPreservesData) {
  profile::TrialData original;
  TauDataSource::parse_file(kSimpleProfile, {0, 0, 0}, original);
  original.infer_dimensions();
  original.recompute_derived_fields();

  util::ScopedTempDir dir;
  write_tau_profiles(original, dir.path() / "trial");
  auto reloaded = TauDataSource(dir.path() / "trial").load();

  EXPECT_EQ(reloaded.events().size(), original.events().size());
  EXPECT_EQ(reloaded.interval_point_count(), original.interval_point_count());
  const auto* p = reloaded.interval_data(*reloaded.find_event("main"), 0, 0);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->inclusive, 1000.0);
  const auto* atomic = reloaded.atomic_data(0, 0);
  ASSERT_NE(atomic, nullptr);
  EXPECT_DOUBLE_EQ(atomic->mean, 50.0);
  EXPECT_NEAR(atomic->std_dev, 15.811388, 1e-5);
}

TEST(TauRoundTrip, MultiMetricUsesMultiDirectories) {
  profile::TrialData trial;
  const std::size_t time = trial.intern_metric("TIME");
  const std::size_t fp = trial.intern_metric("PAPI_FP_OPS");
  const std::size_t e = trial.intern_event("kernel", "compute");
  for (int n = 0; n < 2; ++n) {
    const std::size_t t = trial.intern_thread({n, 0, 0});
    profile::IntervalDataPoint p;
    p.inclusive = 100.0 + n;
    p.exclusive = 100.0 + n;
    p.num_calls = 3;
    trial.set_interval_data(e, t, time, p);
    p.inclusive = 5000.0 + n;
    p.exclusive = 5000.0 + n;
    trial.set_interval_data(e, t, fp, p);
  }
  trial.infer_dimensions();

  util::ScopedTempDir dir;
  write_tau_profiles(trial, dir.path() / "multi");
  EXPECT_TRUE(std::filesystem::is_directory(dir.path() / "multi" / "MULTI__TIME"));
  EXPECT_TRUE(
      std::filesystem::is_directory(dir.path() / "multi" / "MULTI__PAPI_FP_OPS"));

  auto reloaded = TauDataSource(dir.path() / "multi").load();
  ASSERT_EQ(reloaded.metrics().size(), 2u);
  EXPECT_EQ(reloaded.threads().size(), 2u);
  const auto* p = reloaded.interval_data(*reloaded.find_event("kernel"),
                                         *reloaded.find_thread({1, 0, 0}),
                                         *reloaded.find_metric("PAPI_FP_OPS"));
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->inclusive, 5001.0);
}

TEST(TauDetect, DirectoryAndSingleFile) {
  util::ScopedTempDir dir;
  util::write_file(dir.path() / "profile.0.0.0", kSimpleProfile);
  EXPECT_EQ(detect_format(dir.path()).value(), ProfileFormat::kTau);
  EXPECT_EQ(detect_format(dir.path() / "profile.0.0.0").value(),
            ProfileFormat::kTau);
  // Loading a single profile file loads just that thread.
  auto trial = load_profile(dir.path() / "profile.0.0.0");
  EXPECT_EQ(trial.threads().size(), 1u);
}

TEST(TauMetadata, MetadataBlockParsedIntoTrialFields) {
  const char* content =
      "1 templated_functions_MULTI_TIME\n"
      "# Name Calls Subrs Excl Incl ProfileCalls # "
      "<metadata><attribute><name>OS</name><value>Linux 2.6</value>"
      "</attribute><attribute><name>Hostname</name><value>bgl0042</value>"
      "</attribute></metadata>\n"
      "\"main\" 1 0 10 10 0 GROUP=\"X\"\n"
      "0 aggregates\n0 userevents\n";
  profile::TrialData trial;
  TauDataSource::parse_file(content, {0, 0, 0}, trial);
  EXPECT_EQ(trial.trial().fields.at("OS"), "Linux 2.6");
  EXPECT_EQ(trial.trial().fields.at("Hostname"), "bgl0042");
}

TEST(TauMetadata, MalformedMetadataIsIgnored) {
  const char* content =
      "1 templated_functions_MULTI_TIME\n"
      "# header # <metadata><attribute><name>broken\n"
      "\"main\" 1 0 10 10 0\n"
      "0 aggregates\n0 userevents\n";
  profile::TrialData trial;
  EXPECT_NO_THROW(TauDataSource::parse_file(content, {0, 0, 0}, trial));
  EXPECT_TRUE(trial.trial().fields.empty());
  EXPECT_EQ(trial.events().size(), 1u);
}

TEST(TauMetadata, WriterRoundTripsTrialFields) {
  perfdmf::io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 3;
  auto original = perfdmf::io::synth::generate_trial(spec);
  original.trial().fields["Compiler"] = "xlc 7.0";
  original.trial().fields["Queue"] = "pbatch & <special>";

  util::ScopedTempDir dir;
  write_tau_profiles(original, dir.path() / "meta");
  auto reloaded = TauDataSource(dir.path() / "meta").load();
  EXPECT_EQ(reloaded.trial().fields.at("Compiler"), "xlc 7.0");
  EXPECT_EQ(reloaded.trial().fields.at("Queue"), "pbatch & <special>");
}
