#include "analysis/speedup.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "analysis/stats.h"
#include "util/error.h"

namespace perfdmf::analysis {

namespace {

/// Mean exclusive time per (event) across all threads of one trial.
std::map<std::string, double> mean_exclusive_by_event(
    const profile::TrialData& trial, std::size_t metric) {
  std::map<std::string, double> sums;
  std::map<std::string, std::size_t> counts;
  trial.for_each_interval([&](std::size_t e, std::size_t, std::size_t m,
                              const profile::IntervalDataPoint& p) {
    if (m != metric) return;
    const std::string& name = trial.events()[e].name;
    sums[name] += p.exclusive;
    ++counts[name];
  });
  for (auto& [name, total] : sums) total /= static_cast<double>(counts[name]);
  return sums;
}

std::map<std::string, double> mean_inclusive_by_event(
    const profile::TrialData& trial, std::size_t metric) {
  std::map<std::string, double> sums;
  std::map<std::string, std::size_t> counts;
  trial.for_each_interval([&](std::size_t e, std::size_t, std::size_t m,
                              const profile::IntervalDataPoint& p) {
    if (m != metric) return;
    const std::string& name = trial.events()[e].name;
    sums[name] += p.inclusive;
    ++counts[name];
  });
  for (auto& [name, total] : sums) total /= static_cast<double>(counts[name]);
  return sums;
}

}  // namespace

SpeedupReport compute_speedup(
    const std::vector<std::pair<std::int64_t, const profile::TrialData*>>& trials,
    const std::string& metric_name) {
  if (trials.size() < 2) {
    throw InvalidArgument("speedup analysis needs at least two trials");
  }
  auto sorted = trials;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const profile::TrialData& base = *sorted.front().second;
  auto base_metric = base.find_metric(metric_name);
  if (!base_metric) {
    throw InvalidArgument("base trial has no metric '" + metric_name + "'");
  }

  SpeedupReport report;
  report.base_processors = sorted.front().first;
  const auto base_mean = mean_exclusive_by_event(base, *base_metric);

  // Application-level: the largest base inclusive time is the whole run.
  const auto base_inclusive = mean_inclusive_by_event(base, *base_metric);
  std::string app_event;
  double app_base_time = -1.0;
  for (const auto& [name, value] : base_inclusive) {
    if (value > app_base_time) {
      app_base_time = value;
      app_event = name;
    }
  }
  report.application.event_name = app_event;

  for (const auto& [name, base_time] : base_mean) {
    RoutineSpeedup routine;
    routine.event_name = name;
    report.routines.push_back(std::move(routine));
  }

  for (const auto& [processors, trial_ptr] : sorted) {
    const profile::TrialData& trial = *trial_ptr;
    auto metric = trial.find_metric(metric_name);
    if (!metric) {
      throw InvalidArgument("trial at p=" + std::to_string(processors) +
                            " has no metric '" + metric_name + "'");
    }
    // Per-event speedup statistics across threads.
    std::map<std::string, std::vector<double>> speedups;
    trial.for_each_interval([&](std::size_t e, std::size_t, std::size_t m,
                                const profile::IntervalDataPoint& p) {
      if (m != *metric) return;
      const std::string& name = trial.events()[e].name;
      auto base_it = base_mean.find(name);
      if (base_it == base_mean.end() || base_it->second <= 0.0) return;
      if (p.exclusive <= 0.0) return;
      speedups[name].push_back(base_it->second / p.exclusive);
    });

    const double ratio = static_cast<double>(processors) /
                         static_cast<double>(report.base_processors);
    for (auto& routine : report.routines) {
      auto it = speedups.find(routine.event_name);
      if (it == speedups.end()) continue;
      const Descriptive d = describe(it->second);
      RoutineSpeedup::Point point;
      point.processors = processors;
      point.min_speedup = d.minimum;
      point.mean_speedup = d.mean;
      point.max_speedup = d.maximum;
      point.efficiency = d.mean / ratio;
      routine.points.push_back(point);
    }

    // Application speedup from inclusive time of the app event.
    const auto inclusive = mean_inclusive_by_event(trial, *metric);
    auto app_it = inclusive.find(app_event);
    if (app_it != inclusive.end() && app_it->second > 0.0 && app_base_time > 0.0) {
      RoutineSpeedup::Point point;
      point.processors = processors;
      point.mean_speedup = app_base_time / app_it->second;
      point.min_speedup = point.mean_speedup;
      point.max_speedup = point.mean_speedup;
      point.efficiency = point.mean_speedup / ratio;
      report.application.points.push_back(point);
    }
  }
  return report;
}

SpeedupReport compute_speedup_for_experiment(api::DatabaseAPI& api,
                                             std::int64_t experiment_id,
                                             const std::string& metric_name) {
  std::vector<profile::TrialData> storage;
  std::vector<std::pair<std::int64_t, const profile::TrialData*>> trials;
  for (const auto& trial : api.list_trials(experiment_id)) {
    storage.push_back(api.load_trial(trial.id));
  }
  for (const auto& data : storage) {
    const std::int64_t processors =
        data.trial().node_count * std::max<std::int64_t>(1, data.trial().contexts_per_node) *
        std::max<std::int64_t>(1, data.trial().threads_per_context);
    trials.emplace_back(processors, &data);
  }
  return compute_speedup(trials, metric_name);
}

WeakScalingReport compute_weak_scaling(
    const std::vector<std::pair<std::int64_t, const profile::TrialData*>>& trials,
    const std::string& metric_name) {
  if (trials.size() < 2) {
    throw InvalidArgument("weak-scaling analysis needs at least two trials");
  }
  auto sorted = trials;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const profile::TrialData& base = *sorted.front().second;
  auto base_metric = base.find_metric(metric_name);
  if (!base_metric) {
    throw InvalidArgument("base trial has no metric '" + metric_name + "'");
  }
  const auto base_mean = mean_exclusive_by_event(base, *base_metric);

  WeakScalingReport report;
  report.base_processors = sorted.front().first;
  for (const auto& [name, value] : base_mean) {
    WeakScalingReport::Row row;
    row.event_name = name;
    report.routines.push_back(std::move(row));
  }
  for (const auto& [processors, trial_ptr] : sorted) {
    auto metric = trial_ptr->find_metric(metric_name);
    if (!metric) {
      throw InvalidArgument("trial at p=" + std::to_string(processors) +
                            " has no metric '" + metric_name + "'");
    }
    const auto mean = mean_exclusive_by_event(*trial_ptr, *metric);
    for (auto& row : report.routines) {
      auto it = mean.find(row.event_name);
      auto base_it = base_mean.find(row.event_name);
      if (it == mean.end() || it->second <= 0.0 || base_it->second <= 0.0) {
        continue;
      }
      row.efficiency.emplace_back(processors, base_it->second / it->second);
    }
  }
  return report;
}

std::string format_speedup_table(const SpeedupReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-28s %8s %10s %10s %10s %8s\n", "routine",
                "procs", "min", "mean", "max", "eff");
  out += line;
  auto emit = [&](const RoutineSpeedup& routine) {
    for (const auto& p : routine.points) {
      std::snprintf(line, sizeof line,
                    "%-28s %8lld %10.3f %10.3f %10.3f %8.3f\n",
                    routine.event_name.c_str(),
                    static_cast<long long>(p.processors), p.min_speedup,
                    p.mean_speedup, p.max_speedup, p.efficiency);
      out += line;
    }
  };
  emit(report.application);
  for (const auto& routine : report.routines) {
    if (routine.event_name == report.application.event_name) continue;
    emit(routine);
  }
  return out;
}

}  // namespace perfdmf::analysis
