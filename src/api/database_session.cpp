#include "api/database_session.h"

#include "util/error.h"

namespace perfdmf::api {

DatabaseSession::DatabaseSession(std::shared_ptr<sqldb::Connection> connection)
    : api_(std::move(connection)) {}

DatabaseSession::DatabaseSession()
    : api_(std::make_shared<sqldb::Connection>()) {}

DatabaseSession::DatabaseSession(const std::filesystem::path& directory)
    : api_(std::make_shared<sqldb::Connection>(directory)) {}

DatabaseSession DatabaseSession::fork() const {
  DatabaseSession out(std::make_shared<sqldb::Connection>(
      api_.connection_ptr()->database_ptr()));
  out.application_ = application_;
  out.experiment_ = experiment_;
  out.trial_ = trial_;
  out.node_ = node_;
  out.context_ = context_;
  out.thread_ = thread_;
  out.metric_ = metric_;
  out.group_ = group_;
  return out;
}

std::int64_t DatabaseSession::require_trial() const {
  if (!trial_) throw InvalidArgument("no trial selected on this session");
  return *trial_;
}

DatabaseAPI::DataFilter DatabaseSession::current_filter() const {
  DatabaseAPI::DataFilter filter;
  filter.node = node_;
  filter.context = context_;
  filter.thread = thread_;
  filter.metric_id = metric_;
  filter.event_group = group_;
  return filter;
}

std::vector<profile::Application> DatabaseSession::get_application_list() {
  return api_.list_applications();
}

std::vector<profile::Experiment> DatabaseSession::get_experiment_list() {
  if (application_) return api_.list_experiments(*application_);
  // Unscoped: every experiment of every application.
  std::vector<profile::Experiment> out;
  for (const auto& app : api_.list_applications()) {
    auto experiments = api_.list_experiments(app.id);
    out.insert(out.end(), experiments.begin(), experiments.end());
  }
  return out;
}

std::vector<profile::Trial> DatabaseSession::get_trial_list() {
  if (experiment_) return api_.list_trials(*experiment_);
  std::vector<profile::Trial> out;
  for (const auto& experiment : get_experiment_list()) {
    auto trials = api_.list_trials(experiment.id);
    out.insert(out.end(), trials.begin(), trials.end());
  }
  return out;
}

std::vector<profile::Metric> DatabaseSession::get_metrics() {
  return api_.get_metrics(require_trial());
}

std::vector<profile::IntervalEvent> DatabaseSession::get_interval_events() {
  return api_.get_interval_events(require_trial());
}

std::vector<profile::AtomicEvent> DatabaseSession::get_atomic_events() {
  return api_.get_atomic_events(require_trial());
}

std::vector<IntervalProfileRow> DatabaseSession::get_interval_data() {
  return api_.get_interval_data(require_trial(), current_filter());
}

std::vector<AtomicProfileRow> DatabaseSession::get_atomic_data() {
  return api_.get_atomic_data(require_trial(), current_filter());
}

std::int64_t DatabaseSession::save_trial(const profile::TrialData& data,
                                         const std::string& application_name,
                                         const std::string& experiment_name,
                                         bool extend_schema) {
  auto app = api_.find_application(application_name);
  if (!app) {
    profile::Application fresh;
    fresh.name = application_name;
    api_.save_application(fresh);
    app = fresh;
  }
  std::optional<profile::Experiment> experiment;
  for (const auto& e : api_.list_experiments(app->id)) {
    if (e.name == experiment_name) {
      experiment = e;
      break;
    }
  }
  if (!experiment) {
    profile::Experiment fresh;
    fresh.application_id = app->id;
    fresh.name = experiment_name;
    api_.save_experiment(fresh);
    experiment = fresh;
  }
  const std::int64_t trial_id =
      api_.upload_trial(data, experiment->id, extend_schema);
  set_application(app->id);
  set_experiment(experiment->id);
  set_trial(trial_id);
  return trial_id;
}

profile::TrialData DatabaseSession::load_selected_trial() {
  return api_.load_trial(require_trial());
}

}  // namespace perfdmf::api
