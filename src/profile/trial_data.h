// In-memory container for one trial's complete parallel profile.
//
// Storage is optimized for the paper's scale claim (101 events x 16K
// threads ~ 1.6M data points): events, metrics and threads are interned
// into dense indexes, and data points live in one flat vector addressed
// through a packed-key hash map. Iteration in insertion order is
// deterministic regardless of hashing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "profile/data_model.h"

namespace perfdmf::profile {

class TrialData {
 public:
  // ----- identity -------------------------------------------------------
  /// Trial-level metadata (name, node/context/thread shape, fields).
  Trial& trial() { return trial_; }
  const Trial& trial() const { return trial_; }

  // ----- interning ------------------------------------------------------
  /// Find-or-create; returns the dense index. Event group is only set on
  /// creation (later calls with a different group keep the original).
  std::size_t intern_metric(const std::string& name);
  std::size_t intern_event(const std::string& name, const std::string& group = "");
  std::size_t intern_atomic_event(const std::string& name,
                                  const std::string& group = "");
  std::size_t intern_thread(const ThreadId& id);

  std::optional<std::size_t> find_metric(const std::string& name) const;
  std::optional<std::size_t> find_event(const std::string& name) const;
  std::optional<std::size_t> find_atomic_event(const std::string& name) const;
  std::optional<std::size_t> find_thread(const ThreadId& id) const;

  const std::vector<Metric>& metrics() const { return metrics_; }
  const std::vector<IntervalEvent>& events() const { return events_; }
  const std::vector<AtomicEvent>& atomic_events() const { return atomic_events_; }
  const std::vector<ThreadId>& threads() const { return threads_; }

  Metric& metric(std::size_t index) { return metrics_.at(index); }
  IntervalEvent& event(std::size_t index) { return events_.at(index); }
  AtomicEvent& atomic_event(std::size_t index) { return atomic_events_.at(index); }

  // ----- interval data --------------------------------------------------
  /// Set (overwrite) the data point for (event, thread, metric) indexes.
  void set_interval_data(std::size_t event_index, std::size_t thread_index,
                         std::size_t metric_index, const IntervalDataPoint& point);

  const IntervalDataPoint* interval_data(std::size_t event_index,
                                         std::size_t thread_index,
                                         std::size_t metric_index) const;

  /// Visit every stored point in insertion order:
  /// fn(event_index, thread_index, metric_index, point).
  void for_each_interval(
      const std::function<void(std::size_t, std::size_t, std::size_t,
                               const IntervalDataPoint&)>& fn) const;

  std::size_t interval_point_count() const { return interval_points_.size(); }

  // ----- atomic data ----------------------------------------------------
  void set_atomic_data(std::size_t atomic_index, std::size_t thread_index,
                       const AtomicDataPoint& point);
  const AtomicDataPoint* atomic_data(std::size_t atomic_index,
                                     std::size_t thread_index) const;
  void for_each_atomic(const std::function<void(std::size_t, std::size_t,
                                                const AtomicDataPoint&)>& fn) const;
  std::size_t atomic_point_count() const { return atomic_points_.size(); }

  // ----- maintenance ----------------------------------------------------
  /// Recompute inclusive/exclusive percentages (relative to the maximum
  /// inclusive value on each thread+metric, TAU-style) and per-call rates.
  void recompute_derived_fields();

  /// Set trial node/context/thread counts from the interned threads.
  void infer_dimensions();

 private:
  struct IntervalRecord {
    std::uint64_t key;
    IntervalDataPoint point;
  };
  struct AtomicRecord {
    std::uint64_t key;
    AtomicDataPoint point;
  };

  static std::uint64_t pack(std::size_t event, std::size_t thread,
                            std::size_t metric);

  Trial trial_;
  std::vector<Metric> metrics_;
  std::vector<IntervalEvent> events_;
  std::vector<AtomicEvent> atomic_events_;
  std::vector<ThreadId> threads_;

  std::unordered_map<std::string, std::size_t> metric_index_;
  std::unordered_map<std::string, std::size_t> event_index_;
  std::unordered_map<std::string, std::size_t> atomic_index_;
  std::unordered_map<std::uint64_t, std::size_t> thread_index_;

  std::vector<IntervalRecord> interval_points_;
  std::unordered_map<std::uint64_t, std::size_t> interval_lookup_;
  std::vector<AtomicRecord> atomic_points_;
  std::unordered_map<std::uint64_t, std::size_t> atomic_lookup_;
};

}  // namespace perfdmf::profile
