// Deterministic random number generation for workload synthesis and the
// clustering seeders. Benchmarks and property tests need reproducible
// streams, so everything seeds explicitly — no global entropy.
#pragma once

#include <cmath>
#include <cstdint>

namespace perfdmf::util {

/// SplitMix64: tiny, fast, and statistically adequate for synthetic data.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (one value per call; simple over fast).
  double next_gaussian();

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

inline double Rng::next_gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

}  // namespace perfdmf::util
