// The common parallel profile representation (paper §3.1/§3.2).
//
// Profile data is organized by node, context, thread, metric, and event;
// for each combination an aggregate measurement is recorded. The model
// objects mirror the relational schema: APPLICATION -> EXPERIMENT ->
// TRIAL -> { METRIC, INTERVAL_EVENT -> INTERVAL_LOCATION_PROFILE,
// ATOMIC_EVENT -> ATOMIC_LOCATION_PROFILE }.
//
// APPLICATION / EXPERIMENT / TRIAL carry a free-form `fields` map: the
// flexible-schema metadata columns (compiler, system, configuration...)
// that analysts may add or remove without code changes.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <string>

namespace perfdmf::profile {

/// Flexible metadata: column name -> value (stored as text).
using Metadata = std::map<std::string, std::string>;

constexpr std::int64_t kNoId = -1;

struct Application {
  std::int64_t id = kNoId;
  std::string name;
  Metadata fields;  // e.g. version, description, language
};

struct Experiment {
  std::int64_t id = kNoId;
  std::int64_t application_id = kNoId;
  std::string name;
  Metadata fields;  // e.g. system info, compiler info, configuration
};

struct Trial {
  std::int64_t id = kNoId;
  std::int64_t experiment_id = kNoId;
  std::string name;
  std::int64_t node_count = 0;
  std::int64_t contexts_per_node = 0;
  std::int64_t threads_per_context = 0;
  Metadata fields;  // e.g. date/time, problem definition
};

/// A measurement source: wall clock time, PAPI counters, derived rates...
struct Metric {
  std::int64_t id = kNoId;
  std::string name;
  bool derived = false;  // computed by an analysis tool, not measured
};

/// An instrumented interval: function, loop, basic block, code region.
struct IntervalEvent {
  std::int64_t id = kNoId;
  std::string name;
  std::string group;  // e.g. "computation", "communication", "MPI"
};

/// A user-defined atomic counter (TAU user events): memory size, message
/// bytes, etc., sampled at instrumentation points.
struct AtomicEvent {
  std::int64_t id = kNoId;
  std::string name;
  std::string group;
};

/// Location of one thread of execution in the node/context/thread tree.
struct ThreadId {
  std::int32_t node = 0;
  std::int32_t context = 0;
  std::int32_t thread = 0;

  auto operator<=>(const ThreadId&) const = default;
};

/// Cumulative interval measurements for one (event, location, metric),
/// i.e. one INTERVAL_LOCATION_PROFILE row. Fields a source format does
/// not provide are left NaN-free at 0; the summary pass recomputes the
/// derived ones (percentages, per-call).
struct IntervalDataPoint {
  double inclusive = 0.0;
  double exclusive = 0.0;
  double inclusive_pct = 0.0;
  double exclusive_pct = 0.0;
  double inclusive_per_call = 0.0;
  double num_calls = 0.0;
  double num_subrs = 0.0;
};

/// Statistics for one (atomic event, location), i.e. one
/// ATOMIC_LOCATION_PROFILE row.
struct AtomicDataPoint {
  double sample_count = 0.0;
  double maximum = 0.0;
  double minimum = 0.0;
  double mean = 0.0;
  double std_dev = 0.0;
};

/// Render "n:c:t" for messages and text views.
std::string to_string(const ThreadId& id);

}  // namespace perfdmf::profile
