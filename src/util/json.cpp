#include "util/json.h"

#include <cmath>
#include <cstdlib>

#include "util/error.h"

namespace perfdmf::util::json {

namespace {

const char* type_name(Type type) {
  switch (type) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(Type want, Type got) {
  throw ParseError(std::string("json: expected ") + type_name(want) +
                   ", found " + type_name(got));
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error(Type::kBool, type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error(Type::kNumber, type_);
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error(Type::kString, type_);
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (type_ != Type::kArray) type_error(Type::kArray, type_);
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object() const {
  if (type_ != Type::kObject) type_error(Type::kObject, type_);
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type_ = Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_keyword("true")) fail("bad keyword");
        {
          Value v;
          v.type_ = Type::kBool;
          v.bool_ = true;
          return v;
        }
      case 'f':
        if (!consume_keyword("false")) fail("bad keyword");
        {
          Value v;
          v.type_ = Type::kBool;
          return v;
        }
      case 'n':
        if (!consume_keyword("null")) fail("bad keyword");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type_ = Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type_ = Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(parse_hex4(), out); break;
        default: fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  /// BMP code point -> UTF-8. Surrogate pairs are rare in perf data; a
  /// lone surrogate encodes as U+FFFD rather than failing the file.
  void append_utf8(unsigned code, std::string& out) {
    if (code >= 0xD800 && code <= 0xDBFF && pos_ + 1 < text_.size() &&
        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low >= 0xDC00 && low <= 0xDFFF) {
        const unsigned cp = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        out += static_cast<char>(0xF0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
        return;
      }
      code = 0xFFFD;
    } else if (code >= 0xD800 && code <= 0xDFFF) {
      code = 0xFFFD;
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(parsed)) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    Value v;
    v.type_ = Type::kNumber;
    v.number_ = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace perfdmf::util::json
