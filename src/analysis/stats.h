// Descriptive statistics shared by the analysis toolkit.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace perfdmf::analysis {

struct Descriptive {
  std::size_t count = 0;
  double minimum = 0.0;
  double maximum = 0.0;
  double mean = 0.0;
  double variance = 0.0;  // sample variance (n-1); 0 when count < 2
  double std_dev = 0.0;
  double sum = 0.0;
};

/// One pass (Welford) over the values.
Descriptive describe(std::span<const double> values);

/// p in [0,1]; linear interpolation between order statistics. The input
/// is copied and sorted. Throws InvalidArgument on empty input.
double percentile(std::span<const double> values, double p);

/// Pearson correlation of two equal-length series; 0 when degenerate.
double pearson(std::span<const double> x, std::span<const double> y);

/// Squared Euclidean distance between equal-length vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Z-score normalization per column of a row-major matrix (rows x cols),
/// in place. Columns with zero variance become all-zero.
void zscore_columns(std::vector<double>& matrix, std::size_t rows,
                    std::size_t cols);

}  // namespace perfdmf::analysis
